"""CrossClus — user-guided multi-relational clustering (tutorial §4(b)).

CrossClus (Yin, Han & Yu, DMKD'07) clusters the tuples of a *target table*
in a relational database using features scattered across other tables.
The user supplies **guidance**: one attribute (possibly reached through
joins) that expresses what they want the clustering to be about.
CrossClus then searches the join graph outward for *pertinent features* —
categorical attributes whose induced tuple-similarity correlates with the
guidance attribute's — and clusters the target tuples in the space of the
selected features.

Key machinery, faithful to the paper:

* **Tuple-ID propagation** — each feature is materialized as the
  row-normalized distribution of each target tuple over the attribute's
  values, reached by sparse matrix products along the join path.
* **Feature similarity** — ``sim(f, g)`` is the inner product of the two
  features' induced tuple-similarity matrices, computed without ever
  forming them: ``<V_f V_fᵀ, V_g V_gᵀ>_F = ||V_fᵀ V_g||_F²``.
* **Greedy search** — expand join paths breadth-first from the target
  table; keep features whose normalized similarity to the guidance
  feature exceeds a threshold; stop expanding beyond ``max_hops``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.clustering.kmeans import kmeans
from repro.exceptions import NotFittedError, RelationalError
from repro.query.estimator import Estimator
from repro.query.results import ClusteringResult
from repro.relational.database import Database
from repro.relational.propagation import join_matrix, value_indicator
from repro.utils.sparse import row_normalize

__all__ = ["FeatureSpec", "CrossClus"]


@dataclass(frozen=True)
class FeatureSpec:
    """A multi-relational feature: a join path plus a categorical column.

    ``path`` lists the tables joined, starting at the target table;
    ``column`` is the categorical attribute on ``path[-1]`` whose value
    distribution (per target tuple) is the feature vector.
    """

    path: tuple[str, ...]
    column: str

    def __str__(self) -> str:
        return " -> ".join(self.path) + f".{self.column}"


class CrossClus(Estimator):
    """User-guided multi-relational clustering of a target table.

    Parameters
    ----------
    db:
        The relational database (tables + foreign keys).
    target_table:
        Table whose tuples are clustered; must have a primary key.
    n_clusters:
        Number of clusters.
    guidance:
        ``FeatureSpec`` (or ``(path, column)`` tuple) naming the guidance
        attribute.
    min_similarity:
        Pertinence threshold: candidate features with normalized
        similarity to the guidance below this are discarded.
    max_hops:
        Maximum join-path length explored.
    max_features:
        Cap on selected features (guidance included), best-first.
    exclude_columns:
        Iterable of ``(table, column)`` pairs never to use as features
        (e.g. a class label kept on the target table for evaluation).

    Example
    -------
    >>> model = CrossClus(
    ...     db, "client", 2, guidance=(("client", "account"), "region")
    ... )  # doctest: +SKIP
    >>> model.fit().labels_  # doctest: +SKIP
    """

    def __init__(
        self,
        db: Database,
        target_table: str,
        n_clusters: int,
        *,
        guidance,
        min_similarity: float = 0.3,
        max_hops: int = 3,
        max_features: int = 6,
        exclude_columns=(),
        seed=None,
    ):
        self.db = db
        self.target_table = target_table
        self.n_clusters = int(n_clusters)
        if isinstance(guidance, FeatureSpec):
            self.guidance = guidance
        else:
            path, column = guidance
            self.guidance = FeatureSpec(tuple(path), column)
        if self.guidance.path[0] != target_table:
            raise ValueError(
                f"guidance path must start at {target_table!r}, "
                f"got {self.guidance.path}"
            )
        if not 0 <= min_similarity <= 1:
            raise ValueError(f"min_similarity must be in [0,1], got {min_similarity}")
        if max_hops < 0 or max_features < 1 or self.n_clusters < 1:
            raise ValueError("max_hops >= 0, max_features >= 1, n_clusters >= 1 required")
        self.min_similarity = float(min_similarity)
        self.max_hops = int(max_hops)
        self.max_features = int(max_features)
        self.exclude_columns = {(t, c) for t, c in exclude_columns}
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.selected_features_: list[FeatureSpec] | None = None
        self.feature_similarities_: dict | None = None

    # ------------------------------------------------------------------
    def feature_vectors(self, spec: FeatureSpec) -> sp.csr_matrix:
        """Materialize *spec* as a row-stochastic ``(n_target, n_values)``
        matrix via tuple-ID propagation along the join path."""
        prop: sp.csr_matrix | None = None
        for src, dst in zip(spec.path, spec.path[1:]):
            step = join_matrix(self.db, src, dst)
            prop = step if prop is None else prop.dot(step)
        indicator, _ = value_indicator(self.db, spec.path[-1], spec.column)
        if prop is None:  # feature on the target table itself
            counts = indicator
        else:
            counts = prop.dot(indicator)
        return row_normalize(counts)

    @staticmethod
    def feature_similarity(v_f: sp.csr_matrix, v_g: sp.csr_matrix) -> float:
        """Normalized inner product of the induced tuple-similarity matrices.

        ``<V_f V_fᵀ, V_g V_gᵀ>_F / (||V_f V_fᵀ||_F ||V_g V_gᵀ||_F)``
        computed as ``||V_fᵀ V_g||²`` ratios — O(l_f · l_g) instead of O(n²).
        """
        cross = np.asarray(v_f.T.dot(v_g).todense())
        ff = np.asarray(v_f.T.dot(v_f).todense())
        gg = np.asarray(v_g.T.dot(v_g).todense())
        num = float((cross**2).sum())
        den = float(np.sqrt((ff**2).sum()) * np.sqrt((gg**2).sum()))
        if den == 0:
            return 0.0
        return num / den

    # ------------------------------------------------------------------
    def _candidate_features(self) -> list[FeatureSpec]:
        """All categorical attributes reachable within ``max_hops`` joins."""
        candidates: list[FeatureSpec] = []
        seen_paths: set[tuple[str, ...]] = set()
        frontier: list[tuple[str, ...]] = [(self.target_table,)]
        for _ in range(self.max_hops + 1):
            next_frontier: list[tuple[str, ...]] = []
            for path in frontier:
                if path in seen_paths:
                    continue
                seen_paths.add(path)
                table = self.db.table(path[-1])
                for column in table.columns:
                    if column == table.primary_key:
                        continue
                    if (path[-1], column) in self.exclude_columns:
                        continue
                    if any(fk.column == column for fk in self.db.foreign_keys_of(path[-1])):
                        continue  # FK columns are structure, not features
                    candidates.append(FeatureSpec(path, column))
                for neighbor in self.db.joinable_tables(path[-1]):
                    if len(path) >= 2 and neighbor == path[-2]:
                        continue  # no immediate backtracking
                    if neighbor in path:
                        continue  # acyclic paths only
                    next_frontier.append(path + (neighbor,))
            frontier = next_frontier
            if not frontier:
                break
        return candidates

    def fit(self) -> "CrossClus":
        """Search for pertinent features, then k-means in the joint space."""
        target = self.db.table(self.target_table)
        if target.primary_key is None:
            raise RelationalError(
                f"target table {self.target_table!r} needs a primary key"
            )
        v_guidance = self.feature_vectors(self.guidance)

        scored: list[tuple[float, FeatureSpec, sp.csr_matrix]] = []
        self.feature_similarities_ = {}
        for spec in self._candidate_features():
            if spec == self.guidance:
                continue
            v = self.feature_vectors(spec)
            if v.shape[1] < 2:
                continue  # constant attribute carries no signal
            sim = self.feature_similarity(v_guidance, v)
            self.feature_similarities_[spec] = sim
            if sim >= self.min_similarity:
                scored.append((sim, spec, v))
        scored.sort(key=lambda item: -item[0])
        kept = scored[: self.max_features - 1]

        self.selected_features_ = [self.guidance] + [spec for _, spec, _ in kept]
        blocks = [v_guidance.toarray()] + [
            np.sqrt(sim) * v.toarray() for sim, _, v in kept
        ]
        space = np.hstack(blocks)
        result = kmeans(space, self.n_clusters, metric="euclidean", seed=self.seed)
        self.labels_ = result.labels
        return self

    # ------------------------------------------------------------------
    def _is_fitted(self) -> bool:
        return self.labels_ is not None

    def result(self) -> ClusteringResult:
        """The typed partition of the target table's tuples.

        ``node_type`` carries the table name; the selected features stay
        reachable through ``result.model.selected_features_``.
        """
        self._check_fitted()
        return ClusteringResult(
            self.labels_,
            n_clusters=self.n_clusters,
            node_type=self.target_table,
            algorithm="crossclus",
            model=self,
            extras={
                "selected_features": [
                    str(f) for f in (self.selected_features_ or [])
                ]
            },
        )

    def predict_labels(self) -> np.ndarray:
        """Cluster labels of the target tuples (requires :meth:`fit`)."""
        if self.labels_ is None:
            raise NotFittedError("call fit() first")
        return self.labels_
