"""Normalized spectral clustering (tutorial §2(b)i).

Ng–Jordan–Weiss: embed nodes in the bottom-k eigenspace of the normalized
Laplacian ``L_sym = I − D^{-1/2} A D^{-1/2}``, row-normalize, k-means.
Serves as the homogeneous-clustering baseline that RankClus is compared
against (experiment E1) — applied there to the attribute-projection of
the bi-typed network.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.networks.graph import Graph
from repro.clustering.kmeans import kmeans
from repro.utils.sparse import symmetric_normalize

__all__ = ["spectral_clustering", "spectral_embedding"]


def spectral_embedding(graph: Graph, k: int) -> np.ndarray:
    """Bottom-*k* eigenvectors of the symmetric normalized Laplacian.

    Isolated nodes (degree 0) embed at the origin.  Uses dense ``eigh``
    below 500 nodes, Lanczos (``eigsh``) above.
    """
    n = graph.n_nodes
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    adj = graph.to_undirected().adjacency
    norm_adj = symmetric_normalize(adj)
    lap = sp.eye(n, format="csr") - norm_adj
    if n < 500 or k >= n - 1:
        dense = lap.toarray()
        _, vecs = np.linalg.eigh(dense)
        emb = vecs[:, :k]
    else:
        # smallest algebraic eigenvalues; sigma-shift for robustness
        vals, vecs = spla.eigsh(lap, k=k, which="SM", tol=1e-8)
        order = np.argsort(vals)
        emb = vecs[:, order]
    return emb


def spectral_clustering(
    graph: Graph,
    k: int,
    *,
    n_init: int = 8,
    seed=None,
) -> np.ndarray:
    """Cluster *graph* into *k* groups by normalized spectral clustering.

    Returns a label vector in ``0..k-1``.
    """
    emb = spectral_embedding(graph, k)
    # NJW row normalization: project embeddings onto the unit sphere.
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    emb = emb / norms
    result = kmeans(emb, k, metric="euclidean", n_init=n_init, seed=seed)
    return result.labels
