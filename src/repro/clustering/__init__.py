"""Clustering: metrics, k-means, spectral, SCAN, LinkClus, CrossClus."""

from repro.clustering.evaluation import (
    adjusted_rand_index,
    clustering_accuracy,
    confusion_matrix,
    normalized_mutual_information,
    pairwise_f1,
    purity,
)
from repro.clustering.crossclus import CrossClus, FeatureSpec
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.linkclus import LinkClus, SimTree
from repro.clustering.modularity import greedy_modularity, modularity
from repro.clustering.scan import ScanResult, scan, structural_similarity
from repro.clustering.spectral import spectral_clustering, spectral_embedding

__all__ = [
    "LinkClus",
    "SimTree",
    "CrossClus",
    "FeatureSpec",
    "confusion_matrix",
    "clustering_accuracy",
    "normalized_mutual_information",
    "purity",
    "adjusted_rand_index",
    "pairwise_f1",
    "KMeansResult",
    "kmeans",
    "spectral_clustering",
    "spectral_embedding",
    "ScanResult",
    "scan",
    "structural_similarity",
    "greedy_modularity",
    "modularity",
]
