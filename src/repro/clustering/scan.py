"""SCAN — Structural Clustering Algorithm for Networks (Xu et al., KDD'07).

Tutorial §2(b)i.  SCAN clusters a homogeneous graph by *structural
similarity* of neighbourhoods,

    σ(u, v) = |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)| · |Γ(v)|)

with Γ including the node itself, and — unlike modularity methods —
explicitly labels the two roles the tutorial highlights: **hubs** that
bridge several clusters and **outliers** attached to none.

Label conventions (shared with the planted generators):
cluster ids ``0..k-1``; hubs ``-2``; outliers ``-1``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.networks.graph import Graph
from repro.utils.validation import check_positive, check_probability

__all__ = ["ScanResult", "scan", "structural_similarity"]


@dataclass
class ScanResult:
    """SCAN output.

    Attributes
    ----------
    labels:
        Per-node label: cluster id, ``-2`` for hubs, ``-1`` for outliers.
    n_clusters:
        Number of clusters found.
    cores:
        Boolean mask of core nodes.
    """

    labels: np.ndarray
    n_clusters: int
    cores: np.ndarray

    @property
    def hubs(self) -> np.ndarray:
        """Indices of hub nodes."""
        return np.flatnonzero(self.labels == -2)

    @property
    def outliers(self) -> np.ndarray:
        """Indices of outlier nodes."""
        return np.flatnonzero(self.labels == -1)

    def to_dict(self) -> dict:
        """JSON-able form (typed-result protocol of :mod:`repro.query`)."""
        return {
            "kind": "scan",
            "n_clusters": int(self.n_clusters),
            "labels": self.labels.tolist(),
            "hubs": self.hubs.tolist(),
            "outliers": self.outliers.tolist(),
        }


def structural_similarity(graph: Graph) -> "scipy.sparse.csr_matrix":  # noqa: F821
    """Sparse matrix of σ(u, v) for every edge (u, v) of the graph.

    Only adjacent pairs are stored — SCAN never evaluates σ on
    non-adjacent pairs.
    """
    import scipy.sparse as sp

    g = graph.to_undirected().without_self_loops()
    adj = (g.adjacency != 0).astype(np.float64)
    # closed neighbourhoods: Γ(u) = N(u) ∪ {u}
    closed = (adj + sp.eye(g.n_nodes, format="csr")).tocsr()
    sizes = np.asarray(closed.sum(axis=1)).ravel()
    # common closed neighbours for adjacent pairs only:
    common = closed.dot(closed.T).multiply(adj)
    common = common.tocoo()
    sims = common.data / np.sqrt(sizes[common.row] * sizes[common.col])
    return sp.csr_matrix(
        (sims, (common.row, common.col)), shape=adj.shape
    )


def scan(
    graph: Graph,
    *,
    eps: float = 0.7,
    mu: int = 2,
) -> ScanResult:
    """Run SCAN with similarity threshold *eps* and core threshold *mu*.

    A node is a *core* when at least *mu* neighbours (including itself)
    are ε-similar to it; clusters are the connected regions of
    structure-reachability from cores.  Remaining nodes become hubs when
    their neighbours span ≥ 2 clusters, outliers otherwise.
    """
    check_probability(eps, "eps")
    check_positive(mu, "mu")
    g = graph.to_undirected().without_self_loops()
    n = g.n_nodes
    if n == 0:
        return ScanResult(np.zeros(0, dtype=np.int64), 0, np.zeros(0, dtype=bool))

    sim = structural_similarity(g)
    indptr, indices, data = sim.indptr, sim.indices, sim.data

    def eps_neighbors(u: int) -> np.ndarray:
        row = slice(indptr[u], indptr[u + 1])
        neigh = indices[row][data[row] >= eps]
        return neigh

    # ε-neighbourhood includes the node itself (σ(u,u) = 1 >= eps always).
    eps_counts = np.array([eps_neighbors(u).size + 1 for u in range(n)])
    cores = eps_counts >= mu

    labels = np.full(n, -1, dtype=np.int64)
    cluster_id = 0
    for seed_node in range(n):
        if not cores[seed_node] or labels[seed_node] >= 0:
            continue
        # grow a cluster by structure-reachability from this core
        queue: deque[int] = deque([seed_node])
        labels[seed_node] = cluster_id
        while queue:
            u = queue.popleft()
            if not cores[u]:
                continue  # border nodes join but do not expand
            for v in eps_neighbors(u):
                v = int(v)
                if labels[v] < 0:
                    labels[v] = cluster_id
                    queue.append(v)
        cluster_id += 1

    # classify non-members: hub if adjacent clusters >= 2, else outlier
    for u in range(n):
        if labels[u] >= 0:
            continue
        seen: set[int] = set()
        for v in g.neighbors(u):
            if labels[v] >= 0:
                seen.add(int(labels[v]))
        labels[u] = -2 if len(seen) >= 2 else -1

    return ScanResult(labels, cluster_id, cores)
