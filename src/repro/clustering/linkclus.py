"""LinkClus — hierarchical link-based clustering with SimTrees (tutorial §4(a)).

LinkClus (Yin, Han & Yu, SIGMOD'06) answers the question SimRank leaves
open: *similar objects link to similar objects* is a great signal, but the
O(n²) pairwise similarity matrix is unaffordable.  LinkClus stores each
side of a bipartite network in a **SimTree** — a balanced hierarchy whose
leaves are the objects — and approximates ``sim(a, b)`` by the product of
edge weights along the tree path between *a* and *b*, crossing at their
lowest common ancestor through a stored sibling-similarity table.  Because
real link distributions are power laws, most mass concentrates in a few
sibling groups and the tree approximation is tight where it matters.

Mutual reinforcement happens *between* the two trees: sibling similarities
on side A are recomputed from the (aggregated) similarities of the linked
nodes on side B, and vice versa, for a few alternating rounds.

Deviations from the original, recorded in DESIGN.md: the initial hierarchy
comes from recursive k-means bisection of link vectors (the paper uses a
frequent-pattern mining pass), and tree restructuring moves leaves between
sibling groups within their grandparent only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.clustering.kmeans import kmeans
from repro.exceptions import NotFittedError
from repro.query.estimator import Estimator
from repro.query.results import ClusteringResult
from repro.utils.rng import ensure_rng
from repro.utils.sparse import row_normalize, to_csr
from repro.utils.validation import check_positive, check_probability

__all__ = ["SimTree", "LinkClus"]


@dataclass
class SimTree:
    """A balanced hierarchy over one side's objects.

    ``parent[l]`` maps node ids at level *l* to their parent id at level
    ``l+1`` (level 0 = leaves).  ``sibling_sim[l]`` holds, for every pair
    of level-*l* nodes sharing a parent, their similarity in
    ``{(i, j): s}`` form with ``i < j``.  ``edge_weight[l][i]`` is the
    weight of the edge from node *i* (level *l*) to its parent — the mean
    similarity of *i* to its siblings.
    """

    parent: list[np.ndarray]
    sibling_sim: list[dict] = field(default_factory=list)
    edge_weight: list[np.ndarray] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        """Number of parent maps (leaves sit below ``n_levels`` internal levels)."""
        return len(self.parent)

    def n_nodes(self, level: int) -> int:
        """Number of tree nodes at *level* (level 0 = leaves)."""
        if level == 0:
            return len(self.parent[0])
        return int(self.parent[level - 1].max()) + 1 if len(self.parent[level - 1]) else 0

    def ancestors(self, leaf: int) -> list[int]:
        """Node ids of *leaf*'s ancestors, one per level starting at level 1."""
        out = []
        node = leaf
        for level in range(self.n_levels):
            node = int(self.parent[level][node])
            out.append(node)
        return out

    def members(self, level: int, node: int) -> np.ndarray:
        """Leaf ids under *node* at *level*."""
        anc = np.arange(len(self.parent[0]))
        for l in range(level):
            anc = self.parent[l][anc]
        return np.flatnonzero(anc == node)

    def similarity(self, a: int, b: int) -> float:
        """Tree-approximated similarity between leaves *a* and *b*.

        Product of the parent-edge weights below the lowest common
        ancestor, times the stored sibling similarity of the two LCA
        children on the crossing level.  1.0 when ``a == b``; 0.0 when the
        two leaves only meet at a level where no sibling similarity is
        stored (should not happen on a well-formed tree).
        """
        if a == b:
            return 1.0
        sim = 1.0
        na, nb = a, b
        for level in range(self.n_levels):
            pa = int(self.parent[level][na])
            pb = int(self.parent[level][nb])
            if pa == pb:
                key = (na, nb) if na < nb else (nb, na)
                return sim * self.sibling_sim[level].get(key, 0.0)
            sim *= self.edge_weight[level][na] * self.edge_weight[level][nb]
            na, nb = pa, pb
        return 0.0


def _build_hierarchy(
    vectors: sp.csr_matrix, branching: int, rng
) -> list[np.ndarray]:
    """Recursive k-means grouping into a balanced c-ary hierarchy.

    Returns the ``parent`` maps, leaves first.  Levels shrink by roughly
    the branching factor until a single root remains.
    """
    n = vectors.shape[0]
    parents: list[np.ndarray] = []
    current_count = n
    level_vectors = vectors
    while current_count > 1:
        n_groups = max(1, int(np.ceil(current_count / branching)))
        if n_groups >= current_count:
            n_groups = max(1, current_count // 2)
        if n_groups <= 1:
            parents.append(np.zeros(current_count, dtype=np.int64))
            break
        dense = np.asarray(level_vectors.todense())
        result = kmeans(
            dense, n_groups, metric="cosine", n_init=2, seed=rng
        )
        labels = result.labels
        # compact label ids (k-means may leave empty clusters after reseed)
        unique, labels = np.unique(labels, return_inverse=True)
        parents.append(labels.astype(np.int64))
        n_next = len(unique)
        # aggregate vectors per group for the next level
        agg = sp.csr_matrix(
            (np.ones(current_count), (labels, np.arange(current_count))),
            shape=(n_next, current_count),
        )
        level_vectors = agg.dot(level_vectors)
        current_count = n_next
    return parents


class LinkClus(Estimator):
    """Cluster both sides of a bipartite network via mutual SimTrees.

    Parameters
    ----------
    n_clusters:
        Flat cluster count extracted from the target side's tree.
    branching:
        SimTree branching factor *c* (sibling-group size).
    n_iter:
        Alternating refinement rounds between the two trees.
    c:
        SimRank-style decay applied at each cross-side propagation.
    restructure:
        Whether to move leaves between sibling groups after each round.

    Example
    -------
    >>> import numpy as np
    >>> w = np.kron(np.eye(2), np.ones((4, 3)))   # two obvious blocks
    >>> model = LinkClus(n_clusters=2, seed=0).fit(w)
    >>> len(set(model.labels_a_.tolist()))
    2
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        branching: int = 4,
        n_iter: int = 3,
        c: float = 0.8,
        restructure: bool = True,
        seed=None,
    ):
        check_positive(n_clusters, "n_clusters")
        check_positive(branching, "branching")
        check_positive(n_iter, "n_iter")
        check_probability(c, "c")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.n_clusters = int(n_clusters)
        self.branching = int(branching)
        self.n_iter = int(n_iter)
        self.c = float(c)
        self.restructure = bool(restructure)
        self.seed = seed
        self.tree_a_: SimTree | None = None
        self.tree_b_: SimTree | None = None
        self.labels_a_: np.ndarray | None = None
        self.labels_b_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, relation) -> "LinkClus":
        """Build and refine SimTrees for the relation's two sides."""
        w = to_csr(relation)
        n_a, n_b = w.shape
        if n_a < 2 or n_b < 2:
            raise ValueError("both sides need at least 2 objects")
        if self.n_clusters > n_a:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds side-A size {n_a}"
            )
        rng = ensure_rng(self.seed)
        wt = w.T.tocsr()

        self.tree_a_ = self._init_tree(w, rng)
        self.tree_b_ = self._init_tree(wt, rng)
        # Bootstrap sibling similarities from link-vector cosine.
        self._init_similarities(self.tree_a_, w)
        self._init_similarities(self.tree_b_, wt)

        for _ in range(self.n_iter):
            self._refine(self.tree_a_, self.tree_b_, w)
            self._refine(self.tree_b_, self.tree_a_, wt)
            if self.restructure:
                self._restructure(self.tree_a_, w)
                self._restructure(self.tree_b_, wt)
                self._init_similarities(self.tree_a_, w)
                self._init_similarities(self.tree_b_, wt)
                self._refine(self.tree_a_, self.tree_b_, w)
                self._refine(self.tree_b_, self.tree_a_, wt)

        self.labels_a_ = self._cut(self.tree_a_)
        self.labels_b_ = self._cut(self.tree_b_)
        return self

    # ------------------------------------------------------------------
    def _is_fitted(self) -> bool:
        return self.labels_a_ is not None

    def result(self, side: str = "a") -> ClusteringResult:
        """The typed partition of one side of the relation.

        ``side="a"`` (default) is the relation's row side, ``"b"`` the
        column side; the other side's labels ride along in ``extras``.
        """
        self._check_fitted()
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        labels = self.labels_a_ if side == "a" else self.labels_b_
        other = self.labels_b_ if side == "a" else self.labels_a_
        return ClusteringResult(
            labels,
            n_clusters=self.n_clusters,
            algorithm="linkclus",
            model=self,
            extras={"side": side, "other_side_labels": other.tolist()},
        )

    def _init_tree(self, vectors: sp.csr_matrix, rng) -> SimTree:
        parents = _build_hierarchy(vectors, self.branching, rng)
        return SimTree(parent=parents)

    @staticmethod
    def _cosine_rows(vectors: sp.csr_matrix) -> sp.csr_matrix:
        norms = np.sqrt(np.asarray(vectors.multiply(vectors).sum(axis=1)).ravel())
        scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
        return sp.diags(scale).dot(vectors).tocsr()

    def _init_similarities(self, tree: SimTree, leaf_vectors: sp.csr_matrix) -> None:
        """(Re)compute sibling similarities and edge weights at every level
        from cosine similarity of aggregated link vectors."""
        tree.sibling_sim = []
        tree.edge_weight = []
        vectors = leaf_vectors
        n_current = leaf_vectors.shape[0]
        for level in range(tree.n_levels):
            parent = tree.parent[level]
            normed = self._cosine_rows(vectors)
            sims: dict = {}
            weights = np.ones(n_current)
            by_parent: dict[int, list[int]] = {}
            for node, p in enumerate(parent):
                by_parent.setdefault(int(p), []).append(node)
            for children in by_parent.values():
                if len(children) == 1:
                    weights[children[0]] = 1.0
                    continue
                block = normed[children]
                gram = np.asarray(block.dot(block.T).todense())
                for ii, ni in enumerate(children):
                    acc = 0.0
                    for jj, nj in enumerate(children):
                        if ii == jj:
                            continue
                        s = float(gram[ii, jj])
                        acc += s
                        if ni < nj:
                            sims[(ni, nj)] = s
                    weights[ni] = acc / (len(children) - 1)
            tree.sibling_sim.append(sims)
            tree.edge_weight.append(weights)
            # aggregate for next level
            n_next = int(parent.max()) + 1 if len(parent) else 0
            agg = sp.csr_matrix(
                (np.ones(n_current), (parent, np.arange(n_current))),
                shape=(n_next, n_current),
            )
            vectors = agg.dot(vectors)
            n_current = n_next

    def _refine(
        self, tree: SimTree, other: SimTree, w: sp.csr_matrix
    ) -> None:
        """One LinkClus pass: recompute *tree*'s sibling similarities from
        the similarities of linked nodes in *other* (SimRank-style, decayed
        by ``c``), level by level, then refresh edge weights."""
        links = row_normalize(w)  # leaf -> other-leaf distributions
        n_current = w.shape[0]
        level_links = links
        for level in range(tree.n_levels):
            parent = tree.parent[level]
            sims = tree.sibling_sim[level]
            weights = tree.edge_weight[level]
            by_parent: dict[int, list[int]] = {}
            for node, p in enumerate(parent):
                by_parent.setdefault(int(p), []).append(node)
            lil = level_links.tolil()
            rows, data = lil.rows, lil.data
            for children in by_parent.values():
                for idx_i in range(len(children)):
                    ni = children[idx_i]
                    for idx_j in range(idx_i + 1, len(children)):
                        nj = children[idx_j]
                        s = self._cross_similarity(
                            rows[ni], data[ni], rows[nj], data[nj], other
                        )
                        key = (ni, nj) if ni < nj else (nj, ni)
                        sims[key] = self.c * s
                # refresh edge weights from updated sims
                for ni in children:
                    if len(children) == 1:
                        weights[ni] = 1.0
                        continue
                    acc = 0.0
                    for nj in children:
                        if nj == ni:
                            continue
                        key = (ni, nj) if ni < nj else (nj, ni)
                        acc += sims.get(key, 0.0)
                    weights[ni] = acc / (len(children) - 1)
            # aggregate links for the next level
            n_next = int(parent.max()) + 1 if len(parent) else 0
            agg = sp.csr_matrix(
                (np.ones(n_current), (parent, np.arange(n_current))),
                shape=(n_next, n_current),
            )
            level_links = row_normalize(agg.dot(level_links))
            n_current = n_next

    @staticmethod
    def _cross_similarity(idx_i, val_i, idx_j, val_j, other: SimTree) -> float:
        """Average other-side similarity between two link distributions."""
        if not idx_i or not idx_j:
            return 0.0
        total = 0.0
        for bi, wi in zip(idx_i, val_i):
            for bj, wj in zip(idx_j, val_j):
                total += wi * wj * other.similarity(int(bi), int(bj))
        return total

    def _restructure(self, tree: SimTree, w: sp.csr_matrix) -> None:
        """Move each leaf to the sibling group (within its grandparent)
        whose members it is most similar to, bounded by capacity 2c."""
        if tree.n_levels < 2:
            return
        parent0 = tree.parent[0]
        parent1 = tree.parent[1]
        normed = self._cosine_rows(w)
        group_members: dict[int, list[int]] = {}
        for leaf, p in enumerate(parent0):
            group_members.setdefault(int(p), []).append(leaf)
        capacity = 2 * self.branching
        for leaf in range(len(parent0)):
            current_group = int(parent0[leaf])
            grand = int(parent1[current_group])
            candidates = [
                g for g, gp in enumerate(parent1) if int(gp) == grand
            ]
            if len(candidates) < 2:
                continue
            best_group, best_score = current_group, -1.0
            leaf_vec = normed[leaf]
            for g in candidates:
                members = [m for m in group_members.get(g, []) if m != leaf]
                if not members:
                    continue
                if g != current_group and len(group_members.get(g, [])) >= capacity:
                    continue
                score = float(
                    np.asarray(leaf_vec.dot(normed[members].T).todense()).mean()
                )
                if score > best_score:
                    best_group, best_score = g, score
            if best_group != current_group:
                group_members[current_group].remove(leaf)
                group_members.setdefault(best_group, []).append(leaf)
                parent0[leaf] = best_group

    def _cut(self, tree: SimTree) -> np.ndarray:
        """Flatten the tree into exactly ``n_clusters`` groups.

        Starts from the deepest level with at least ``n_clusters`` nodes
        and agglomeratively merges the most similar node pair (average
        tree-similarity linkage over member leaves, sampled) until the
        target count is reached.
        """
        n_leaves = len(tree.parent[0])
        k = self.n_clusters
        # find level with >= k nodes, as high as possible
        level = 0
        anc = np.arange(n_leaves)
        for l in range(tree.n_levels):
            nxt = tree.parent[l][anc]
            if int(nxt.max()) + 1 < k:
                break
            anc = nxt
            level = l + 1
        _, labels = np.unique(anc, return_inverse=True)
        n_groups = labels.max() + 1
        rng = ensure_rng(self.seed)
        while n_groups > k:
            # average-linkage merge of the most similar pair (sampled leaves)
            reps: list[np.ndarray] = []
            for g in range(n_groups):
                members = np.flatnonzero(labels == g)
                if members.size > 8:
                    members = rng.choice(members, size=8, replace=False)
                reps.append(members)
            best_pair, best_sim = (0, 1), -1.0
            for i in range(n_groups):
                for j in range(i + 1, n_groups):
                    total, cnt = 0.0, 0
                    for a in reps[i]:
                        for b in reps[j]:
                            total += tree.similarity(int(a), int(b))
                            cnt += 1
                    s = total / cnt if cnt else 0.0
                    if s > best_sim:
                        best_sim, best_pair = s, (i, j)
            i, j = best_pair
            labels[labels == j] = i
            labels[labels > j] -= 1
            n_groups -= 1
        return labels

    # ------------------------------------------------------------------
    def similarity(self, a: int, b: int, *, side: str = "a") -> float:
        """Tree-approximated similarity between two side-A (or side-B) objects."""
        tree = self.tree_a_ if side == "a" else self.tree_b_
        if tree is None:
            raise NotFittedError("call fit() before querying similarities")
        return tree.similarity(a, b)
