"""K-means on feature vectors — the workhorse behind spectral clustering,
RankClus's measure-space step, and CrossClus.

Supports Euclidean and cosine distance, k-means++ seeding, multiple
restarts, and empty-cluster reseeding.  Deliberately dependency-free
(numpy only) per the library's no-sklearn policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rngs

__all__ = ["KMeansResult", "kmeans"]


@dataclass
class KMeansResult:
    """Outcome of one k-means run (the best over ``n_init`` restarts).

    Attributes
    ----------
    labels:
        Cluster index per sample.
    centers:
        ``(k, d)`` centroid matrix.
    inertia:
        Sum of squared distances (or cosine dissimilarities) to assigned
        centroids.
    n_iter:
        Iterations used by the winning restart.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int


def _normalize_rows(x: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return x / norms


def _distances(x: np.ndarray, centers: np.ndarray, metric: str) -> np.ndarray:
    if metric == "euclidean":
        # squared distances via the expansion ||x||^2 - 2 x.c + ||c||^2
        x_sq = (x**2).sum(axis=1)[:, None]
        c_sq = (centers**2).sum(axis=1)[None, :]
        d = x_sq - 2.0 * x.dot(centers.T) + c_sq
        np.maximum(d, 0.0, out=d)
        return d
    # cosine dissimilarity: rows already unit-normalized; clamp the tiny
    # negative values float error can produce so k-means++ weights stay valid
    d = 1.0 - x.dot(centers.T)
    np.maximum(d, 0.0, out=d)
    return d


def _kmeanspp_init(x: np.ndarray, k: int, metric: str, rng) -> np.ndarray:
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = x[first]
    closest = _distances(x, centers[:1], metric).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # all points coincide with chosen centers: pick uniformly
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centers[i] = x[pick]
        np.minimum(
            closest, _distances(x, centers[i : i + 1], metric).ravel(), out=closest
        )
    return centers


def _single_run(
    x: np.ndarray, k: int, metric: str, max_iter: int, tol: float, rng
) -> KMeansResult:
    centers = _kmeanspp_init(x, k, metric, rng)
    labels = np.zeros(x.shape[0], dtype=np.int64)
    for iteration in range(max_iter):
        dists = _distances(x, centers, metric)
        labels = dists.argmin(axis=1)
        new_centers = np.zeros_like(centers)
        for c in range(k):
            members = x[labels == c]
            if members.shape[0] == 0:
                # reseed empty cluster at the point farthest from its center
                worst = int(dists.min(axis=1).argmax())
                new_centers[c] = x[worst]
            else:
                new_centers[c] = members.mean(axis=0)
        if metric == "cosine":
            new_centers = _normalize_rows(new_centers)
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            break
    dists = _distances(x, centers, metric)
    labels = dists.argmin(axis=1)
    inertia = float(dists[np.arange(x.shape[0]), labels].sum())
    return KMeansResult(labels, centers, inertia, iteration + 1)


def kmeans(
    features,
    k: int,
    *,
    metric: str = "euclidean",
    n_init: int = 8,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed=None,
) -> KMeansResult:
    """Cluster row vectors of *features* into *k* groups.

    Parameters
    ----------
    features:
        ``(n, d)`` array-like; sparse input is densified (the library only
        calls this on low-dimensional embeddings/measure spaces).
    k:
        Number of clusters; must satisfy ``1 <= k <= n``.
    metric:
        ``"euclidean"`` or ``"cosine"``.  Cosine normalizes rows first and
        keeps centroids unit-length, which is the convention for
        spectral-embedding and rank-distribution spaces.
    n_init:
        Independent k-means++ restarts; the lowest-inertia run wins.
    """
    x = np.asarray(
        features.toarray() if hasattr(features, "toarray") else features,
        dtype=np.float64,
    )
    if x.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    if metric not in ("euclidean", "cosine"):
        raise ValueError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    if metric == "cosine":
        x = _normalize_rows(x)

    best: KMeansResult | None = None
    for rng in spawn_rngs(seed, n_init):
        run = _single_run(x, k, metric, max_iter, tol, rng)
        if best is None or run.inertia < best.inertia:
            best = run
    return best
