"""OLAP on information networks (tutorial §7(c), iNextCube-style).

A classical data cube aggregates numeric measures over dimension
hierarchies; an **information-network cube** does the same where every
cell's content is a *sub-network*.  Dimensions are attributes of the
center objects (venue area, publication year, ...); a cell materializes
the sub-HIN induced by the center objects matching its coordinates, and
its measures are both *informational* (object/link counts) and
*topological/ranked* (per-cell authority rankings — the "ranked measure"
of iNextCube).

Supported operations: ``cell`` point query, ``group_by`` (one or two
dimensions), ``slice``/``dice`` to sub-cubes, and ``roll_up`` along a
declared concept hierarchy.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CubeError, DimensionError
from repro.networks.hin import HIN
from repro.ranking.authority import simple_ranking

__all__ = ["Dimension", "CubeCell", "InfoNetCube"]


class Dimension:
    """A cube dimension over the center objects.

    Parameters
    ----------
    name:
        Dimension name (unique within the cube).
    values:
        One value per center object (any hashable).
    hierarchies:
        Optional ``{level_name: {value: coarser_value}}`` concept
        hierarchies for roll-up (e.g. year → five-year period).
    """

    def __init__(self, name: str, values: Sequence, hierarchies: Mapping | None = None):
        if not name:
            raise CubeError("dimension name must be non-empty")
        self.name = name
        self.values = np.asarray(list(values), dtype=object)
        self.hierarchies: dict[str, dict] = dict(hierarchies or {})

    def rolled_up(self, level: str) -> "Dimension":
        """New dimension with values mapped through hierarchy *level*."""
        if level not in self.hierarchies:
            raise DimensionError(
                f"dimension {self.name!r} has no hierarchy level {level!r}"
            )
        mapping = self.hierarchies[level]
        missing = {v for v in self.values if v not in mapping}
        if missing:
            raise CubeError(
                f"hierarchy {level!r} of {self.name!r} lacks mappings for "
                f"{sorted(map(str, missing))[:5]}"
            )
        return Dimension(
            f"{self.name}:{level}",
            [mapping[v] for v in self.values],
            hierarchies=None,
        )

    def domain(self) -> list:
        """Distinct values, in first-appearance order."""
        seen: dict = {}
        for v in self.values:
            seen.setdefault(v, None)
        return list(seen)

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, n={len(self.values)}, levels={list(self.hierarchies)})"


@dataclass
class CubeCell:
    """One cube cell: coordinates plus the member center objects.

    Measures are computed lazily from the cell's sub-network.
    """

    coordinates: dict
    members: np.ndarray
    _cube: "InfoNetCube"

    @property
    def count(self) -> int:
        """Informational measure: number of center objects in the cell."""
        return int(self.members.size)

    def sub_hin(self) -> HIN:
        """The cell's sub-network (center restricted to the members)."""
        return self._cube.hin.restrict(self._cube.center_type, self.members)

    def link_count(self) -> int:
        """Informational measure: links incident to the cell's members."""
        total = 0
        for rel in self._cube.hin.schema.relations:
            m = self._cube.hin.relation_matrix(rel.name)
            if rel.source == self._cube.center_type:
                total += int(m[self.members].nnz)
            elif rel.target == self._cube.center_type:
                total += int(m[:, self.members].nnz)
        return total

    def attribute_count(self, node_type: str) -> int:
        """Distinct objects of *node_type* linked to the cell's members."""
        m = self._cube.hin.engine().matrix_between(self._cube.center_type, node_type)
        sub = m[self.members]
        return int(np.unique(sub.tocoo().col).size)

    def top_ranked(self, node_type: str, k: int) -> list[tuple]:
        """Ranked measure: top-*k* attribute objects within the cell
        (degree-share ranking of the cell's sub-network).  A cell whose
        members carry no links of this relation ranks nothing."""
        m = self._cube.hin.engine().matrix_between(self._cube.center_type, node_type)
        sub = m[self.members]
        if sub.nnz == 0:
            return []
        ranking = simple_ranking(sub.T)
        pairs = ranking.top_targets(k)
        hin = self._cube.hin
        return [
            (hin.name_of(node_type, i), score)
            for i, score in pairs
            if score > 0
        ]

    def to_dict(self) -> dict:
        """JSON-able informational measures (the typed-result protocol of
        :mod:`repro.query`); ranked measures stay on-demand via
        :meth:`top_ranked`, since they cost a sub-network ranking each."""
        return {
            "kind": "cube_cell",
            "coordinates": {str(k): v for k, v in self.coordinates.items()},
            "count": self.count,
            "link_count": self.link_count(),
        }

    def __repr__(self) -> str:
        return f"CubeCell({self.coordinates!r}, count={self.count})"


class InfoNetCube:
    """An information-network cube over one HIN.

    Parameters
    ----------
    hin:
        The network; cells restrict its *center_type*.
    center_type:
        The type whose objects are the cube's fact rows.
    dimensions:
        :class:`Dimension` objects, each with one value per center object.

    Example
    -------
    >>> cube = InfoNetCube(dblp.hin, "paper", [area_dim, year_dim])  # doctest: +SKIP
    >>> cube.cell(area="database", year=2004).count                   # doctest: +SKIP
    """

    def __init__(self, hin: HIN, center_type: str, dimensions: Sequence[Dimension]):
        n = hin.node_count(center_type)  # validates the type
        self.hin = hin
        self.center_type = center_type
        self._dims: dict[str, Dimension] = {}
        for dim in dimensions:
            if dim.name in self._dims:
                raise CubeError(f"duplicate dimension {dim.name!r}")
            if len(dim.values) != n:
                raise CubeError(
                    f"dimension {dim.name!r} has {len(dim.values)} values "
                    f"for {n} center objects"
                )
            self._dims[dim.name] = dim
        if not self._dims:
            raise CubeError("cube needs at least one dimension")

    # ------------------------------------------------------------------
    @property
    def dimension_names(self) -> list[str]:
        return list(self._dims)

    def dimension(self, name: str) -> Dimension:
        try:
            return self._dims[name]
        except KeyError:
            raise DimensionError(f"no dimension named {name!r}") from None

    @property
    def n_center(self) -> int:
        return self.hin.node_count(self.center_type)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cell(self, **coordinates) -> CubeCell:
        """Point query: the cell at the given dimension=value coordinates.

        Unmentioned dimensions are aggregated over (``*`` in cube terms).
        """
        if not coordinates:
            raise CubeError("cell() needs at least one coordinate")
        mask = np.ones(self.n_center, dtype=bool)
        for dim_name, value in coordinates.items():
            dim = self.dimension(dim_name)
            mask &= dim.values == value
        return CubeCell(dict(coordinates), np.flatnonzero(mask), self)

    def group_by(self, *dim_names: str) -> list[CubeCell]:
        """All non-empty cells of the cuboid on *dim_names*."""
        if not dim_names:
            raise CubeError("group_by() needs at least one dimension")
        dims = [self.dimension(d) for d in dim_names]
        keys: dict[tuple, list[int]] = {}
        for i in range(self.n_center):
            key = tuple(dim.values[i] for dim in dims)
            keys.setdefault(key, []).append(i)
        cells = []
        for key, members in keys.items():
            coords = dict(zip(dim_names, key))
            cells.append(CubeCell(coords, np.asarray(members), self))
        cells.sort(key=lambda c: tuple(str(v) for v in c.coordinates.values()))
        return cells

    # ------------------------------------------------------------------
    # Cube algebra
    # ------------------------------------------------------------------
    def slice(self, dim_name: str, value) -> "InfoNetCube":
        """Sub-cube keeping only the center objects where dim == value."""
        return self.dice(dim_name, [value])

    def dice(self, dim_name: str, values: Sequence) -> "InfoNetCube":
        """Sub-cube keeping center objects whose dim value is in *values*."""
        dim = self.dimension(dim_name)
        allowed = set(values)
        mask = np.array([v in allowed for v in dim.values])
        if not mask.any():
            raise CubeError(
                f"dice on {dim_name!r} with {values!r} selects no objects"
            )
        members = np.flatnonzero(mask)
        sub_hin = self.hin.restrict(self.center_type, members)
        new_dims = [
            Dimension(d.name, d.values[members], d.hierarchies)
            for d in self._dims.values()
        ]
        return InfoNetCube(sub_hin, self.center_type, new_dims)

    def roll_up(self, dim_name: str, level: str) -> "InfoNetCube":
        """New cube with *dim_name* coarsened through hierarchy *level*."""
        dims = []
        for d in self._dims.values():
            dims.append(d.rolled_up(level) if d.name == dim_name else d)
        return InfoNetCube(self.hin, self.center_type, dims)

    def __repr__(self) -> str:
        return (
            f"InfoNetCube(center={self.center_type!r}, "
            f"dims={self.dimension_names!r}, n={self.n_center})"
        )
