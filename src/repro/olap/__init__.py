"""OLAP over information networks: dimensions, cells, cube algebra."""

from repro.olap.cube import CubeCell, Dimension, InfoNetCube

__all__ = ["Dimension", "CubeCell", "InfoNetCube"]
