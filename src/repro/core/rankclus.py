"""RankClus — integrating clustering with ranking (Sun et al., EDBT'09).

The tutorial's centrepiece for §4(c): on a bi-typed information network
(target objects X, e.g. venues; attribute objects Y, e.g. authors),
clustering and ranking are not two tasks but one loop —

1. **Rank** — compute conditional rank distributions ``p(Y | cluster)``
   on each cluster's sub-network (simple or authority ranking);
2. **Estimate** — treat each cluster's attribute ranking as a component
   of a mixture model and EM-estimate, for every target object, its
   posterior membership ``π(x, k)`` from the links it owns;
3. **Adjust** — re-assign each target object to the nearest cluster
   centre in the K-dimensional membership space (cosine), and repeat.

Good ranking needs good clusters and good clusters need good ranking;
iterating the loop sharpens both, which is exactly the phenomenon the
benchmark E1 measures against a one-shot spectral baseline.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from repro.networks.hin import HIN
from repro.query.estimator import Estimator
from repro.query.results import ClusteringResult
from repro.ranking.authority import BiTypeRanking, authority_ranking, simple_ranking
from repro.utils.sparse import to_csr
from repro.utils.validation import check_positive, check_probability

__all__ = ["RankClus"]


class RankClus(Estimator):
    """Ranking-based clustering of the target side of a bi-typed network.

    Parameters
    ----------
    n_clusters:
        Number of target clusters K.
    ranking:
        ``"authority"`` (mutual reinforcement, the paper's default) or
        ``"simple"`` (degree share).
    alpha:
        Authority-ranking mixing weight for the attribute–attribute
        propagation term (ignored for simple ranking).
    em_iter:
        Inner EM rounds per outer iteration.
    max_iter:
        Outer rank–estimate–adjust rounds.
    smoothing:
        Mixing weight of the global attribute distribution into each
        cluster's component (avoids zero-probability links).
    n_init:
        Independent restarts; the partition with the highest mixture
        log-likelihood wins (a single random partition can stall in a
        poor local optimum on weakly separated data).
    init:
        ``"smart"`` (default) seeds the first restart with a cosine
        k-means partition of the raw link vectors and the rest randomly;
        ``"random"`` uses random partitions only, as in the original
        paper's description.
    seed:
        Seeds the initial partitions and empty-cluster repair.

    Attributes
    ----------
    labels_:
        Cluster id per target object.
    posterior_:
        ``(n_x, K)`` membership matrix π.
    rankings_:
        Per-cluster conditional :class:`BiTypeRanking` on the final
        partition.
    n_iter_:
        Outer iterations executed.

    Example
    -------
    >>> model = RankClus(n_clusters=2, seed=0)          # doctest: +SKIP
    >>> model.fit(w_xy)                                  # doctest: +SKIP
    >>> model.labels_, model.rankings_[0].top_targets(5) # doctest: +SKIP
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        ranking: str = "authority",
        alpha: float = 0.95,
        em_iter: int = 5,
        max_iter: int = 30,
        smoothing: float = 0.1,
        n_init: int = 4,
        init: str = "smart",
        seed=None,
    ):
        check_positive(n_clusters, "n_clusters")
        if ranking not in ("authority", "simple"):
            raise ValueError(
                f"ranking must be 'authority' or 'simple', got {ranking!r}"
            )
        check_probability(alpha, "alpha")
        check_probability(smoothing, "smoothing")
        check_positive(em_iter, "em_iter")
        check_positive(max_iter, "max_iter")
        check_positive(n_init, "n_init")
        if init not in ("smart", "random"):
            raise ValueError(f"init must be 'smart' or 'random', got {init!r}")
        self.n_init = int(n_init)
        self.init = init
        self.n_clusters = int(n_clusters)
        self.ranking = ranking
        self.alpha = float(alpha)
        self.em_iter = int(em_iter)
        self.max_iter = int(max_iter)
        self.smoothing = float(smoothing)
        self.seed = seed

        self.labels_: np.ndarray | None = None
        self.posterior_: np.ndarray | None = None
        self.rankings_: list[BiTypeRanking] | None = None
        self.n_iter_: int = 0
        self._hin: HIN | None = None
        self._target_type: str | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        w_xy,
        *,
        w_yy=None,
        hin: HIN | None = None,
        target_type: str | None = None,
        attribute_type: str | None = None,
        target_attribute_path=None,
        attribute_attribute_path=None,
    ) -> "RankClus":
        """Cluster the target objects.

        The estimator-protocol form passes the network first —
        ``fit(hin, target_type=..., attribute_type=...)`` — with optional
        meta-paths selecting indirect link matrices.  The matrix form
        ``fit(w_xy, w_yy=...)`` takes the bi-type link matrix directly.
        ``hin=`` as a keyword is a deprecated spelling of the first form.
        """
        if hin is not None:
            warnings.warn(
                "RankClus.fit(..., hin=...) is deprecated; pass the HIN "
                "positionally: fit(hin, target_type=..., attribute_type=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if w_xy is not None:
                raise ValueError("pass either w_xy or hin=, not both")
        elif isinstance(w_xy, HIN):
            hin, w_xy = w_xy, None
        if hin is not None:
            if target_type is None or attribute_type is None:
                raise ValueError(
                    "target_type and attribute_type are required with a HIN"
                )
            self._hin = hin
            self._target_type = target_type
            # Route matrix construction through the network's shared
            # engine: refitting (other K, other paths over shared
            # prefixes) reuses materialized products instead of
            # rebuilding them.
            engine = hin.engine()
            if target_attribute_path is None:
                w_xy = engine.matrix_between(target_type, attribute_type)
            else:
                mp = engine.path(target_attribute_path)
                if (mp.source_type, mp.target_type) != (target_type, attribute_type):
                    raise ValueError(
                        f"target_attribute_path {mp} does not go "
                        f"{target_type!r} -> {attribute_type!r}"
                    )
                w_xy = engine.commuting_matrix(mp)
            if attribute_attribute_path is not None:
                mp = engine.path(attribute_attribute_path)
                if (mp.source_type, mp.target_type) != (attribute_type, attribute_type):
                    raise ValueError(
                        f"attribute_attribute_path {mp} does not go "
                        f"{attribute_type!r} -> {attribute_type!r}"
                    )
                w_yy = engine.commuting_matrix(mp)
        if w_xy is None:
            raise ValueError("either w_xy or hin= must be provided")
        w = to_csr(w_xy)
        n_x, n_y = w.shape
        k = self.n_clusters
        if k > n_x:
            raise ValueError(f"n_clusters={k} exceeds number of targets {n_x}")
        yy = None if w_yy is None else to_csr(w_yy)
        global_rank = simple_ranking(w).attribute_scores

        from repro.utils.rng import spawn_rngs

        best = None  # (log_likelihood, labels, posterior, n_iter)
        for restart, rng in enumerate(spawn_rngs(self.seed, self.n_init)):
            if restart == 0 and self.init == "smart":
                labels = self._kmeans_partition(w, rng)
            else:
                labels = self._initial_partition(n_x, rng)
            posterior = np.full((n_x, k), 1.0 / k)
            n_iter = 0
            for iteration in range(self.max_iter):
                p_y = self._component_distributions(w, yy, labels, global_rank)
                posterior = self._em_posteriors(w, p_y, posterior)
                new_labels = self._adjust(posterior, labels, rng)
                n_iter = iteration + 1
                if np.array_equal(new_labels, labels):
                    labels = new_labels
                    break
                labels = new_labels
            p_y = self._component_distributions(w, yy, labels, global_rank)
            ll = self._log_likelihood(w, p_y, posterior)
            if best is None or ll > best[0]:
                best = (ll, labels, posterior, n_iter)

        _, labels, posterior, self.n_iter_ = best
        self.labels_ = labels
        self.posterior_ = posterior
        self.rankings_ = self._conditional_rankings(w, yy, labels)
        return self

    def _component_distributions(
        self, w: sp.csr_matrix, yy, labels: np.ndarray, global_rank: np.ndarray
    ) -> np.ndarray:
        """Per-cluster attribute distributions, smoothed with global ranks."""
        components = self._conditional_rankings(w, yy, labels)
        return np.stack(
            [
                (1 - self.smoothing) * comp.attribute_scores
                + self.smoothing * global_rank
                for comp in components
            ]
        )

    @staticmethod
    def _log_likelihood(
        w: sp.csr_matrix, p_y: np.ndarray, posterior: np.ndarray
    ) -> float:
        """Mixture log-likelihood Σ_x Σ_y w_xy · log Σ_k π_xk p_k(y)."""
        log_mix = 0.0
        coo = w.tocoo()
        mix = posterior[coo.row] * p_y[:, coo.col].T  # (nnz, k)
        per_link = np.log(np.maximum(mix.sum(axis=1), 1e-300))
        log_mix = float((coo.data * per_link).sum())
        return log_mix

    # ------------------------------------------------------------------
    def _initial_partition(self, n_x: int, rng) -> np.ndarray:
        """Random partition guaranteeing every cluster is non-empty."""
        labels = rng.integers(0, self.n_clusters, size=n_x)
        # force one member per cluster
        forced = rng.permutation(n_x)[: self.n_clusters]
        labels[forced] = np.arange(self.n_clusters)
        return labels.astype(np.int64)

    def _kmeans_partition(self, w: sp.csr_matrix, rng) -> np.ndarray:
        """Smart init: cosine k-means on the targets' raw link vectors."""
        from repro.clustering.kmeans import kmeans

        result = kmeans(
            w.toarray(), self.n_clusters, metric="cosine", n_init=4, seed=rng
        )
        labels = result.labels.astype(np.int64)
        # guarantee non-empty clusters (kmeans reseeding usually suffices)
        for c in range(self.n_clusters):
            if not (labels == c).any():
                labels[int(rng.integers(0, labels.size))] = c
        return labels

    def _conditional_rankings(
        self, w: sp.csr_matrix, yy, labels: np.ndarray
    ) -> list[BiTypeRanking]:
        """Rank each cluster's sub-network (cluster targets, all attributes).

        Transient non-convergence of the per-cluster authority ranking is
        expected while the partition is still moving, so its
        ConvergenceWarning is silenced here; the final rankings exposed on
        ``rankings_`` are computed from the settled partition.
        """
        import warnings as _warnings

        from repro.exceptions import ConvergenceWarning as _CW

        out: list[BiTypeRanking] = []
        for c in range(self.n_clusters):
            members = np.flatnonzero(labels == c)
            sub = w[members]
            if self.ranking == "simple":
                ranking = simple_ranking(sub)
            else:
                with _warnings.catch_warnings():
                    _warnings.simplefilter("ignore", _CW)
                    ranking = authority_ranking(
                        sub, yy, alpha=self.alpha, max_iter=200, tol=1e-7
                    )
            out.append(ranking)
        return out

    def _em_posteriors(
        self, w: sp.csr_matrix, p_y: np.ndarray, posterior: np.ndarray
    ) -> np.ndarray:
        """EM for per-target mixture coefficients π(x, k).

        E-step responsibilities per link, M-step re-estimates π from the
        link mass each component explains.  Works in the sparse structure
        of ``w`` only.
        """
        n_x, k = posterior.shape
        w = w.tocsr()
        log_p = np.log(np.maximum(p_y, 1e-300))  # (k, n_y)
        pi = posterior.copy()
        for _ in range(self.em_iter):
            new_pi = np.zeros_like(pi)
            for x in range(n_x):
                start, end = w.indptr[x], w.indptr[x + 1]
                ys = w.indices[start:end]
                ws = w.data[start:end]
                if ys.size == 0:
                    new_pi[x] = 1.0 / k
                    continue
                # responsibilities: z[k, y] ∝ pi[x,k] * p_y[k, y]
                weights = pi[x][:, None] * np.exp(log_p[:, ys])  # (k, deg)
                denom = weights.sum(axis=0)
                denom[denom == 0] = 1.0
                z = weights / denom
                mass = (z * ws[None, :]).sum(axis=1)
                total = mass.sum()
                new_pi[x] = mass / total if total > 0 else 1.0 / k
            pi = new_pi
        return pi

    def _adjust(
        self, posterior: np.ndarray, labels: np.ndarray, rng
    ) -> np.ndarray:
        """Re-assign targets to the nearest cluster centre (cosine) in
        membership space; repair empty clusters by stealing the weakest
        members of the largest cluster."""
        k = self.n_clusters
        norms = np.linalg.norm(posterior, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        x = posterior / norms
        centers = np.zeros((k, k))
        for c in range(k):
            members = x[labels == c]
            centers[c] = members.mean(axis=0) if members.shape[0] else 0.0
        c_norms = np.linalg.norm(centers, axis=1, keepdims=True)
        c_norms[c_norms == 0] = 1.0
        centers /= c_norms
        sims = x.dot(centers.T)
        new_labels = sims.argmax(axis=1).astype(np.int64)
        # repair empties
        for c in range(k):
            if not (new_labels == c).any():
                largest = int(np.bincount(new_labels, minlength=k).argmax())
                candidates = np.flatnonzero(new_labels == largest)
                # weakest affinity to its own centre moves
                weakest = candidates[np.argmin(sims[candidates, largest])]
                new_labels[weakest] = c
        return new_labels

    # ------------------------------------------------------------------
    def _is_fitted(self) -> bool:
        return self.labels_ is not None

    def result(self) -> ClusteringResult:
        """The typed partition of the target objects.

        Membership strengths are the max mixture posteriors; when the
        model was fitted from a HIN, members carry their node names and
        the result records the clustered type.
        """
        self._check_fitted()
        names = (
            self._hin.names(self._target_type)
            if self._hin is not None and self._target_type is not None
            else None
        )
        return ClusteringResult(
            self.labels_,
            n_clusters=self.n_clusters,
            scores=self.posterior_.max(axis=1),
            names=names,
            node_type=self._target_type,
            algorithm="rankclus",
            model=self,
        )

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Indices of target objects in *cluster*."""
        self._check_fitted()
        return np.flatnonzero(self.labels_ == cluster)

    def top_targets(self, cluster: int, k: int) -> list[tuple[int, float]]:
        """Top-*k* target objects of *cluster* by conditional rank,
        reported with their original (global) indices."""
        self._check_fitted()
        members = self.cluster_members(cluster)
        ranking = self.rankings_[cluster]
        pairs = ranking.top_targets(min(k, members.size))
        return [(int(members[i]), score) for i, score in pairs]

    def top_attributes(self, cluster: int, k: int) -> list[tuple[int, float]]:
        """Top-*k* attribute objects of *cluster* by conditional rank."""
        self._check_fitted()
        return self.rankings_[cluster].top_attributes(k)
