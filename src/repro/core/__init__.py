"""The tutorial's primary contribution: ranking-integrated clustering —
RankClus (bi-typed networks), NetClus (star-schema networks), and the
§7(a) extension: cluster-evolution tracking over temporal snapshots."""

from repro.core.evolution import (
    ClusterEvolution,
    temporal_snapshots,
    track_cluster_evolution,
)
from repro.core.netclus import NetClus
from repro.core.rankclus import RankClus

__all__ = [
    "RankClus",
    "NetClus",
    "ClusterEvolution",
    "temporal_snapshots",
    "track_cluster_evolution",
]
