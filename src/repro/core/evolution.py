"""Evolution of dynamic heterogeneous networks (tutorial §7(a)).

The tutorial's first "research frontier": information networks change
over time and their *clusters* evolve — areas grow, shrink, split and
merge.  This module implements the laptop-scale version of that program:

1. slice a HIN into temporal snapshots by a timestamp on the center
   objects (:func:`temporal_snapshots`);
2. run NetClus on every snapshot;
3. match clusters across consecutive snapshots by the cosine similarity
   of their attribute rank distributions (Hungarian assignment), yielding
   evolution chains with per-step similarity — the lineage of each
   net-cluster (:class:`ClusterEvolution`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.netclus import NetClus
from repro.networks.hin import HIN

__all__ = ["temporal_snapshots", "ClusterEvolution", "track_cluster_evolution"]


def temporal_snapshots(
    hin: HIN,
    center_type: str,
    timestamps,
    boundaries,
) -> list[tuple[str, HIN]]:
    """Slice *hin* into windows of center objects by *timestamps*.

    ``boundaries`` is an increasing sequence ``[b0, b1, ..., bk]``; window
    *i* keeps center objects with ``b_i <= t < b_{i+1}`` (the final window
    is inclusive on the right).  Returns ``(window_label, sub_hin)``
    pairs; empty windows are skipped.
    """
    ts = np.asarray(timestamps)
    n = hin.node_count(center_type)
    if ts.shape != (n,):
        raise ValueError(
            f"timestamps must have shape ({n},), got {ts.shape}"
        )
    boundaries = list(boundaries)
    if len(boundaries) < 2 or any(
        a >= b for a, b in zip(boundaries, boundaries[1:])
    ):
        raise ValueError("boundaries must be an increasing sequence of >= 2 values")
    out: list[tuple[str, HIN]] = []
    for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        last = i == len(boundaries) - 2
        mask = (ts >= lo) & ((ts <= hi) if last else (ts < hi))
        members = np.flatnonzero(mask)
        if members.size == 0:
            continue
        label = f"[{lo}, {hi}{']' if last else ')'}"
        out.append((label, hin.restrict(center_type, members)))
    return out


@dataclass
class ClusterEvolution:
    """Cluster lineages across temporal snapshots.

    Attributes
    ----------
    windows:
        Snapshot labels, in order.
    models:
        The fitted per-snapshot :class:`NetClus` models.
    chains:
        One lineage per cluster of the first snapshot: a list of
        ``(window_index, cluster_id)`` pairs.
    transition_similarity:
        ``transition_similarity[i][c]`` is the rank-distribution cosine
        between chain-c's cluster in window *i* and in window *i+1*.
    """

    windows: list[str]
    models: list[NetClus]
    chains: list[list[tuple[int, int]]]
    transition_similarity: list[list[float]]

    def lineage(self, chain: int) -> list[tuple[str, int]]:
        """Human-readable lineage: ``(window_label, cluster_id)`` pairs."""
        return [(self.windows[w], c) for w, c in self.chains[chain]]


def _rank_vector(model: NetClus, cluster: int) -> np.ndarray:
    """Concatenated attribute rank distributions of one net-cluster."""
    parts = [
        model.type_rankings_[t][cluster]
        for t in sorted(model.type_rankings_)
    ]
    return np.concatenate(parts)


def _match(prev: NetClus, nxt: NetClus) -> tuple[np.ndarray, np.ndarray]:
    """Hungarian matching of clusters by rank-distribution cosine."""
    k = prev.n_clusters
    sim = np.zeros((k, nxt.n_clusters))
    for a in range(k):
        va = _rank_vector(prev, a)
        na = np.linalg.norm(va)
        for b in range(nxt.n_clusters):
            vb = _rank_vector(nxt, b)
            nb = np.linalg.norm(vb)
            sim[a, b] = va.dot(vb) / (na * nb) if na > 0 and nb > 0 else 0.0
    rows, cols = linear_sum_assignment(-sim)
    return cols[np.argsort(rows)], sim[rows, cols][np.argsort(rows)]


def track_cluster_evolution(
    hin: HIN,
    center_type: str,
    timestamps,
    boundaries,
    *,
    n_clusters: int,
    seed=None,
    **netclus_kwargs,
) -> ClusterEvolution:
    """Fit NetClus per temporal window and chain matching clusters.

    Every snapshot gets the same K; chains follow the Hungarian match of
    rank distributions between consecutive windows.  Low transition
    similarity flags a cluster that dissolved or was reshaped — the
    split/merge signal of the evolution literature.
    """
    snapshots = temporal_snapshots(hin, center_type, timestamps, boundaries)
    if len(snapshots) < 2:
        raise ValueError("need at least two non-empty temporal windows")
    windows = [label for label, _ in snapshots]
    models = [
        NetClus(n_clusters=n_clusters, seed=seed, **netclus_kwargs).fit(sub)
        for _, sub in snapshots
    ]
    chains = [[(0, c)] for c in range(n_clusters)]
    transition_similarity: list[list[float]] = []
    for i in range(len(models) - 1):
        mapping, sims = _match(models[i], models[i + 1])
        step_sims = []
        for chain_idx in range(n_clusters):
            prev_cluster = chains[chain_idx][-1][1]
            nxt_cluster = int(mapping[prev_cluster])
            chains[chain_idx].append((i + 1, nxt_cluster))
            step_sims.append(float(sims[prev_cluster]))
        transition_similarity.append(step_sims)
    return ClusterEvolution(windows, models, chains, transition_similarity)
