"""Sharded cluster serving: row-partitioned scatter/merge top-k.

:class:`~repro.serving.ClusterService` replicates the *entire* network
into every worker — per-worker memory and publish time scale with
N x network, which is exactly backwards for the "millions of users"
regime the ROADMAP targets.  This module is the partitioned
alternative: each served meta-path's half product ``W`` is split
**row-wise** into contiguous node ranges (one per shard, balanced by
incident nnz), each shard's slice is packed into its own shared-memory
generation, and a top-k query executes as

::

    parent                          shard workers (one process each)
    ------                          --------------------------------
    extract W[q] rows + diag[q]  →  scatter (same payload to all)
                                    score own rows:  2·(W_s · w_q)
                                                     ─────────────
                                                     diag_q + diag_s
                                    partial top-k over [lo, hi)
    exact k-way merge            ←  (global indices, scores)
    tie-stable TopKResult

**Bit-identity.**  The distributed answer equals the single-process
engine's, bit for bit, by construction rather than by tolerance:

* CSR row slicing preserves each row's stored entries and their order,
  so ``W_s.dot(w_q)`` runs the identical per-row summation as rows
  ``[lo, hi)`` of the full ``W.dot(w_q)``.
* The query-side operands a shard cannot derive from its slice — the
  query's ``W`` rows and its PathSim diagonal entry — are extracted
  from the *parent-held* half product
  (:meth:`~repro.engine.MetaPathEngine.pathsim_query_rows`, the same
  planner-aware materialization every entry point uses) and shipped
  with the job, so each denominator ``diag[q] + diag[j]`` is the same
  two floats added in the same order.
* Each shard surfaces its top ``k`` (``k+1`` under self-exclusion) in
  the engine's ``(-score, index)`` order; a global winner ranks at
  least as high within its own shard, so the per-shard cut never drops
  one, and :func:`~repro.engine.topk.merge_top_k` re-sorts the union
  under the identical stable key.

**Updates.**  The single-writer ``hin.apply()`` path is unchanged.  The
commit hook classifies each :class:`~repro.networks.updates.AppliedUpdate`
per shard — backward reachability over each served path's half steps
(:func:`~repro.watch.analysis.touched_chain_rows`, an exact superset)
intersected with the shard's row range — and republishes **only the
touched shards**: a localized batch moves one shard's generation while
the others keep serving their still-bit-valid slices.  Node growth
recomputes the :class:`ShardPlan` and republishes everything.

Standing queries route the same way: the service installs a partial
scorer on the network's :class:`~repro.watch.WatchManager`, so
incremental watch maintenance scores each touched candidate on the
shard owning its rows and stitches the columns back — or falls back to
the in-process engine whenever the distributed path declines.

Benchmark E21 asserts the bit-identity and epoch consistency under a
live writer, the ≤1/2 per-worker memory ratio against the replicated
cluster, and the touched-shards-only republication.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import scipy.sparse as sp

from repro.engine.topk import finalize_top_k, merge_top_k, shard_top_k
from repro.exceptions import SnapshotError
from repro.networks.stats import balanced_ranges, type_row_weights
from repro.query.results import TopKResult
from repro.serving.api import ServingAPI
from repro.serving.cluster import (
    _SHUTDOWN,
    _WorkerChannel,
    _default_start_method,
    _execute_job,
    _pickles,
    _picklable,
    _process_rss,
)
from repro.serving.service import QueryService
from repro.serving.shm import (
    PublishedGeneration,
    _csr_from_arrays,
    _csr_to_arrays,
    attach_arrays,
    export_arrays,
)
from repro.utils.cache import LRUCache
from repro.watch.analysis import touched_chain_rows

__all__ = [
    "ShardPlan",
    "ShardState",
    "ShardedClusterService",
    "publish_shard_generation",
    "attach_shard_generation",
]

_FORMAT = "repro-shard-generation"
_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Row-range assignment of each partitioned node type to shards.

    Every node type that sources a served meta-path is split into
    ``shards`` contiguous ``[lo, hi)`` ranges, balanced by each row's
    incident link count (:func:`~repro.networks.stats.type_row_weights`
    through :func:`~repro.networks.stats.balanced_ranges`) — a row's
    serving cost is proportional to its nnz, not its existence.  Ranges
    are contiguous and ascending by construction, which is what makes
    the scatter/merge order and the watch-block stitching exact.  A
    type with fewer rows than shards simply yields empty trailing
    ranges, which every consumer (packing, scoring, merging) tolerates.
    """

    shards: int
    ranges: dict  # node_type -> tuple of (lo, hi) per shard

    @classmethod
    def compute(cls, hin, node_types, shards: int) -> "ShardPlan":
        """Balance *node_types* of *hin* across *shards* by incident nnz."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        ranges = {
            t: tuple(balanced_ranges(type_row_weights(hin, t), shards))
            for t in node_types
        }
        return cls(int(shards), ranges)

    def range_of(self, node_type: str, shard: int) -> tuple[int, int]:
        """The ``[lo, hi)`` row range of *node_type* owned by *shard*."""
        return self.ranges[node_type][shard]

    def shards_touching(self, node_type: str, rows) -> set[int]:
        """Which shards own at least one of *rows* (sorted indices)."""
        rows = np.asarray(rows, dtype=np.int64)
        out: set[int] = set()
        if rows.size == 0 or node_type not in self.ranges:
            return out
        for shard, (lo, hi) in enumerate(self.ranges[node_type]):
            if lo == hi:
                continue
            a = int(np.searchsorted(rows, lo, side="left"))
            b = int(np.searchsorted(rows, hi, side="left"))
            if b > a:
                out.add(shard)
        return out

    def __repr__(self) -> str:
        return f"ShardPlan(shards={self.shards}, types={sorted(self.ranges)})"


class _ServedPath:
    """Per-served-path state staged once at registration time."""

    __slots__ = ("mp", "token", "half_steps", "relations")

    def __init__(self, mp):
        self.mp = mp
        # The canonical key is the path's identity across every
        # spelling; its repr travels in picklable job payloads.
        self.token = repr(mp.canonical_key())
        steps = tuple(mp.steps())
        self.half_steps = steps[: len(steps) // 2]
        self.relations = frozenset(rel.name for rel, _ in self.half_steps)

    @property
    def source_type(self) -> str:
        """Node type of the meta-path's source (and, symmetric, target)."""
        return self.mp.source_type


# ----------------------------------------------------------------------
# Per-shard generations (pack / attach)
# ----------------------------------------------------------------------
def _write_shard_descriptor(directory, shard: int, generation: int, descriptor) -> Path:
    """Atomically write ``shard<s>-gen-<n>.json`` (the rename is the
    publication point, exactly like full generations)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"shard{int(shard)}-gen-{int(generation)}.json"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(descriptor, indent=2), encoding="utf-8")
    os.replace(tmp, path)
    return path


def publish_shard_generation(
    hin, engine, served, plan: ShardPlan, shard: int, *, directory, generation: int
) -> PublishedGeneration:
    """Pack one shard's slice of every served path into a generation.

    For each served path, the shard's rows ``[lo, hi)`` of the half
    product ``W`` plus the matching diagonal slice are captured under
    one engine read-lock hold — the same planner-aware
    ``_pathsim_parts`` materialization the single-process entry points
    use, so the packed values are bitwise the ones a replicated worker
    would compute — then copied once into a shared-memory segment
    (:func:`repro.serving.shm.export_arrays`).  Nothing else ships:
    a shard worker holds ~1/N of each served path's index, not the
    network.

    Parameters
    ----------
    hin / engine:
        The live network and its shared engine.
    served:
        Iterable of :class:`_ServedPath` (stable iteration order).
    plan / shard:
        The row assignment and which shard to pack.
    directory / generation:
        Where the descriptor lives and the shard-local monotonic
        counter naming it (``shard<s>-gen-<n>.json``).
    """
    arrays: dict[str, np.ndarray] = {}
    entries = []
    with engine.lock.read():
        epoch = getattr(hin, "version", 0)
        for i, spath in enumerate(served):
            w, diag = engine._pathsim_parts(spath.mp)
            lo, hi = plan.range_of(spath.source_type, shard)
            prefix = f"path/{i}"
            entry = {"token": spath.token, "prefix": prefix, "lo": int(lo), "hi": int(hi)}
            entry.update(_csr_to_arrays(f"{prefix}/w", w[lo:hi].tocsr(), arrays))
            arrays[f"{prefix}/diag"] = np.ascontiguousarray(diag[lo:hi])
            entries.append(entry)
    segment, source = export_arrays(arrays)
    descriptor = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "shard": int(shard),
        "generation": int(generation),
        "epoch": int(epoch),
        "entries": entries,
        "sources": [source],
    }
    path = _write_shard_descriptor(directory, shard, generation, descriptor)
    return PublishedGeneration(generation, epoch, path, segment)


class ShardState:
    """A shard worker's live view of one published shard generation.

    ``entries`` maps each served path token to ``(w_s, diag_s, lo)`` —
    the shard's CSR row slice of the half product, the matching
    diagonal slice, and the global index of the slice's first row.
    All views over the shared segment; nothing copied.
    """

    def __init__(self, shard, generation, epoch, entries, resources, payload_bytes):
        self.shard = int(shard)
        self.generation = int(generation)
        self.epoch = int(epoch)
        self.entries = entries
        self.payload_bytes = int(payload_bytes)
        self._resources = resources

    def close(self) -> None:
        """Release the attachment (idempotent, tolerant of live views)."""
        self.entries = {}
        resources, self._resources = self._resources, []
        for resource in resources:
            if resource is None:
                continue
            try:
                resource.close()
            except BufferError:
                pass  # views still alive; the mapping dies with them

    def __repr__(self) -> str:
        return (
            f"ShardState(shard={self.shard}, generation={self.generation}, "
            f"epoch={self.epoch}, paths={len(self.entries)})"
        )


def attach_shard_generation(path_or_descriptor, *, untrack: bool = False) -> ShardState:
    """Attach one published shard generation zero-copy.

    Mirrors :func:`repro.serving.shm.attach_generation` for the
    shard-slice descriptor format; raises ``FileNotFoundError`` when
    the descriptor or its segment is already retired.
    """
    if isinstance(path_or_descriptor, dict):
        descriptor = path_or_descriptor
    else:
        descriptor = json.loads(Path(path_or_descriptor).read_text(encoding="utf-8"))
    if descriptor.get("format") != _FORMAT:
        raise SnapshotError(
            f"not a {_FORMAT} descriptor: format={descriptor.get('format')!r}"
        )
    if descriptor.get("format_version") != _FORMAT_VERSION:
        raise SnapshotError(
            f"shard generation format version "
            f"{descriptor.get('format_version')!r} not supported"
        )
    resources = []
    arrays: dict[str, np.ndarray] = {}
    payload_bytes = 0
    try:
        for source in descriptor["sources"]:
            resource, chunk = attach_arrays(source, untrack=untrack)
            resources.append(resource)
            arrays.update(chunk)
            if resource is not None:
                payload_bytes += int(resource.size)
        entries = {}
        for entry in descriptor["entries"]:
            w_s = _csr_from_arrays(f"{entry['prefix']}/w", arrays, entry["shape"])
            diag_s = arrays[f"{entry['prefix']}/diag"]
            entries[entry["token"]] = (w_s, diag_s, int(entry["lo"]))
    except BaseException:
        for resource in resources:
            if resource is not None:
                try:
                    resource.close()
                except BufferError:
                    pass
        raise
    return ShardState(
        descriptor["shard"],
        descriptor["generation"],
        descriptor["epoch"],
        entries,
        resources,
        payload_bytes,
    )


# ----------------------------------------------------------------------
# Shard worker process
# ----------------------------------------------------------------------
def _unpack_queries(packed) -> tuple[sp.csr_matrix, np.ndarray]:
    """Rebuild the scattered query payload: ``(W[q] rows, diag[q])``."""
    data, indices, indptr, shape, q_diag = packed
    rows = sp.csr_matrix((data, indices, indptr), shape=tuple(shape), copy=False)
    rows.has_canonical_format = True
    return rows, np.asarray(q_diag, dtype=np.float64)


def _shard_scores(w_s, diag_s, q_rows, q_diag) -> np.ndarray:
    """The shard's slice of each query's dense PathSim score row.

    Bit-identical to columns ``[lo, hi)`` of the engine's answer: one
    query runs the 1-D mat-vec kernel exactly as
    ``MetaPathEngine.pathsim_row`` does (zero-filled dense query row,
    ``W_s.dot``, scalar-plus-vector denominator), several queries run
    the 2-D block kernel exactly as ``pathsim_rows`` does — mirroring
    the engine's own solo/batch split, so either dispatch path on the
    parent meets the identical summation here.
    """
    if q_rows.shape[0] == 1:
        dense = np.zeros(q_rows.shape[1])
        dense[q_rows.indices] = q_rows.data
        row = w_s.dot(dense)
        denom = q_diag[0] + diag_s
        return np.divide(
            2.0 * row,
            denom,
            out=np.zeros_like(row, dtype=np.float64),
            where=denom != 0,
        )[None, :]
    block = w_s.dot(np.asarray(q_rows.todense()).T).T  # (m, n_s)
    denom = q_diag[:, None] + diag_s[None, :]
    return np.divide(
        2.0 * block,
        denom,
        out=np.zeros_like(block, dtype=np.float64),
        where=denom != 0,
    )


def _execute_shard_job(state: ShardState, kind, payload):  # pragma: no cover
    """One shard job -> aligned ``("ok", value) | ("err", error)`` statuses.

    ``block`` answers a scattered top-k: one status per query, each
    carrying the shard's partial ``(global indices, scores)`` list.
    ``partial`` answers a watch-maintenance re-score: the shard's
    columns of the partial PathSim block, mirroring
    ``pathsim_partial_block``'s kernel on the slice.  ``info`` reports
    the worker's memory footprint.
    """
    if kind == "info":
        return [
            (
                "ok",
                {
                    "rss_bytes": _process_rss(),
                    "payload_bytes": state.payload_bytes,
                    "generation": state.generation,
                    "epoch": state.epoch,
                    "shard": state.shard,
                },
            )
        ]
    if kind == "block":
        token, need, packed = payload
        w_s, diag_s, lo = state.entries[token]
        q_rows, q_diag = _unpack_queries(packed)
        scores = _shard_scores(w_s, diag_s, q_rows, q_diag)
        return [("ok", shard_top_k(row, need, offset=lo)) for row in scores]
    if kind == "partial":
        token, local_idx, packed = payload
        w_s, diag_s, lo = state.entries[token]
        q_rows, q_diag = _unpack_queries(packed)
        local = np.asarray(local_idx, dtype=np.int64)
        # Mirror pathsim_partial_block's kernel on the slice: F-ordered
        # densify-then-transpose operand, CSR x dense block, candidate
        # diagonal plus query diagonal, transposed back.
        block = q_rows.toarray(order="F").T
        dots = w_s[local].dot(block)
        denom = diag_s[local][:, None] + q_diag[None, :]
        scores = np.divide(
            2.0 * dots,
            denom,
            out=np.zeros_like(dots, dtype=np.float64),
            where=denom != 0,
        )
        return [("ok", scores.T)]
    raise ValueError(f"unknown shard job kind {kind!r}")


def _job_size(kind, payload) -> int:  # pragma: no cover
    """How many statuses a failed job must still deliver."""
    if kind == "block":
        return max(1, len(payload[2][2]) - 1)  # queries = len(indptr) - 1
    return 1


def _shard_worker_main(  # pragma: no cover — runs in child processes
    shard_id, task_queue, result_queue, gen_value, gen_dir, untrack
):
    """Shard worker loop: attach the pinned shard generation, serve jobs.

    Unlike the replicated cluster's epoch *floor*, every shard job pins
    an **exact generation**: a scattered query's per-shard partials
    must all come from the same epoch as the parent-extracted query
    rows, and the parent guarantees (by dispatching under the engine
    read lock, which excludes commits, hence republications) that the
    pinned generation is current and stays attachable for the job's
    duration.  The retry loop below only absorbs descriptor-visibility
    races on attach, with the same LRU(2) retirement as the replicated
    worker.
    """
    import pickle

    current = None
    attached = LRUCache(2, on_evict=lambda _key, state: state.close())

    def ensure_generation(target):
        """Attach exactly generation ``target``, retrying until published."""
        nonlocal current
        if current is not None and current.generation == target:
            return current
        deadline = time.monotonic() + 60.0
        while True:
            try:
                state = attach_shard_generation(
                    Path(gen_dir) / f"shard{shard_id}-gen-{target}.json",
                    untrack=untrack,
                )
                break
            except FileNotFoundError:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"shard worker {shard_id} could not attach "
                        f"generation {target}"
                    ) from None
                time.sleep(0.002)
        current = state
        attached.bump_generation()
        attached.put(target, state)
        attached.evict_written_before(attached.generation)
        return current

    while True:
        job = task_queue.get()
        if job is _SHUTDOWN:
            break
        job_id, kind, payload, target_gen = job
        try:
            state = ensure_generation(target_gen)
            statuses = _execute_shard_job(state, kind, payload)
        except BaseException as exc:  # noqa: BLE001 — deliver, don't die
            statuses = [("err", _picklable(exc))] * _job_size(kind, payload)
        try:
            pickle.dumps(statuses)
        except Exception:
            statuses = [
                (status, value)
                if _pickles(value)
                else ("err", RuntimeError(f"result not picklable: {value!r:.200}"))
                for status, value in statuses
            ]
        result_queue.put((job_id, statuses))
    attached.clear()


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ShardedClusterService(ServingAPI):
    """Multi-process serving with row-sharded state and scatter/merge top-k.

    Parameters
    ----------
    hin:
        The network to serve.  The parent keeps the only mutable copy
        (and the full half products); updates flow through
        ``hin.apply()`` and republish only the touched shards.
    paths:
        The symmetric meta-paths to shard-serve.  Top-k PathSim over
        these scatters across the workers; everything else — other
        paths, other measures, connectivity, rankings — executes
        parent-side, at the same epoch guarantees.  More paths can be
        added later with :meth:`prewarm`.
    shards:
        Worker-process count = partition count.  Defaults to the
        usable CPU count capped at 4.
    max_batch:
        Per-job bound on same-shape top-k batching, as in
        :class:`~repro.serving.QueryService`.
    directory:
        Where shard generation descriptors live (a private temp
        directory by default).
    mp_context:
        ``multiprocessing`` start method (``"fork"`` where available).
    keep_generations:
        How many published generations per shard stay attachable at
        once (>= 2).
    job_timeout:
        Seconds a dispatched shard job may take before the parent
        gives up.
    workers:
        Service thread count (defaults to the shard count) — threads
        that coalesce/batch requests and drive scatters.

    The client surface is the shared
    :class:`~repro.serving.api.ServingAPI`; swapping a replicated
    ``ClusterService`` for this class changes construction only (see
    GUIDE §8).  Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        hin,
        paths,
        *,
        shards: int | None = None,
        max_batch: int = 64,
        directory=None,
        mp_context: str | None = None,
        keep_generations: int = 2,
        job_timeout: float = 120.0,
        workers: int | None = None,
    ):
        if hin is None:
            raise ValueError("ShardedClusterService needs a live hin")
        paths = list(paths)
        if not paths:
            raise ValueError(
                "ShardedClusterService needs at least one served meta-path"
            )
        engine = hin.engine()
        served: dict[str, _ServedPath] = {}
        for p in paths:
            spath = _ServedPath(engine.symmetric_path(p))
            served.setdefault(spath.token, spath)
        if shards is None:
            try:
                usable = len(os.sched_getaffinity(0))
            except AttributeError:
                usable = os.cpu_count() or 1
            shards = max(1, min(usable, 4))
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._ctx = multiprocessing.get_context(
            mp_context or _default_start_method()
        )
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._directory = (
            Path(directory)
            if directory
            else Path(tempfile.mkdtemp(prefix="repro-shards-"))
        )
        self._own_directory = directory is None
        self.hin = hin
        self._served = served
        self._plan = ShardPlan.compute(
            hin, sorted({s.source_type for s in served.values()}), shards
        )
        self._job_timeout = float(job_timeout)
        # One mutex for anything that uses the shard channels (scatter,
        # watch partial scoring, worker_memory) — channels carry one
        # outstanding job each; one for republication bookkeeping.
        self._scatter_mutex = threading.Lock()
        self._publish_mutex = threading.Lock()
        self._stats_mutex = threading.Lock()
        self._shard_gens = [0] * shards
        self._shard_epochs = [0] * shards
        self._republications = [0] * shards
        self._gen_values = [self._ctx.Value("L", 0) for _ in range(shards)]
        self._published = [
            LRUCache(
                max(2, int(keep_generations)),
                on_evict=lambda _key, generation: generation.dispose(),
            )
            for _ in range(shards)
        ]
        self._scatters = 0
        self._fallbacks = 0
        self._partial_jobs = 0
        self._closed = False
        self._channels: list[_WorkerChannel] = []
        self._service = None
        self._hook = None
        self._scorer = None
        self._parent_state = SimpleNamespace(hin=hin, engine=engine)

        try:
            epoch0 = getattr(hin, "version", 0)
            for s in range(shards):
                generation = publish_shard_generation(
                    hin, engine, list(self._served.values()), self._plan, s,
                    directory=self._directory, generation=0,
                )
                self._published[s].put(0, generation)
                self._shard_epochs[s] = generation.epoch
            self._published_epoch = epoch0
            # Workers fork/spawn BEFORE any service thread exists.
            for s in range(shards):
                self._channels.append(
                    _WorkerChannel(
                        self._ctx,
                        s,
                        self._gen_values[s],
                        str(self._directory),
                        target=_shard_worker_main,
                    )
                )
            self._hook = hin.add_commit_hook(self._on_commit)
            self._scorer = self._partial_scorer
            hin.watches().set_partial_scorer(self._scorer)
            self._service = QueryService(
                hin,
                workers=int(workers) if workers else len(self._channels),
                max_batch=max_batch,
                executor=self,
            )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # ServingAPI plumbing
    # ------------------------------------------------------------------
    def _serving_core(self) -> QueryService:
        """The embedded :class:`QueryService`; this cluster is its
        execution backend."""
        return self._service

    def prewarm(self, *paths) -> "ShardedClusterService":
        """Add *paths* to the shard-served set and republish every shard.

        New source types extend the :class:`ShardPlan`; already-served
        paths are no-ops.  Runs under both mutexes, so it excludes
        in-flight scatters and concurrent republication.
        """
        engine = self.hin.engine()
        new = [_ServedPath(engine.symmetric_path(p)) for p in paths]
        with self._scatter_mutex, self._publish_mutex:
            for spath in new:
                self._served.setdefault(spath.token, spath)
            types = sorted({s.source_type for s in self._served.values()})
            if set(types) - set(self._plan.ranges):
                self._plan = ShardPlan.compute(self.hin, types, self._plan.shards)
            for s in range(len(self._channels)):
                self._republish_shard(s)
        return self

    # ------------------------------------------------------------------
    # Generation lifecycle
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The served network's current update epoch."""
        return getattr(self.hin, "version", 0)

    @property
    def republications(self) -> list[int]:
        """Per-shard republication counters (initial publish excluded) —
        the observable E21 asserts touched-shards-only maintenance on."""
        return list(self._republications)

    def _republish_shard(self, shard: int) -> None:
        """Export *shard*'s current slice as its next generation."""
        self._shard_gens[shard] += 1
        generation = publish_shard_generation(
            self.hin,
            self.hin.engine(),
            list(self._served.values()),
            self._plan,
            shard,
            directory=self._directory,
            generation=self._shard_gens[shard],
        )
        self._published[shard].bump_generation()
        self._published[shard].put(self._shard_gens[shard], generation)
        self._shard_epochs[shard] = generation.epoch
        self._republications[shard] += 1
        # Publication point for this shard's workers.
        self._gen_values[shard].value = self._shard_gens[shard]

    def _classify(self, update) -> set[int] | None:
        """Which shards *update* can touch; ``None`` means replan + all.

        Per served path whose relations carry a delta, the changed
        source rows are the backward reachability of the delta over the
        half steps (:func:`touched_chain_rows` — an exact superset:
        rows outside it multiply only unchanged entries, so their
        ``W``/diagonal slices are bit-unchanged and the shards holding
        them keep serving their old generation *validly at the new
        epoch*).  Node growth changes row universes and matrix shapes,
        so the plan itself is recomputed.
        """
        if update.node_growth:
            return None
        touched: set[int] = set()
        reach_cache: dict = {}
        for spath in self._served.values():
            if not (spath.relations & set(update.deltas)):
                continue
            key = tuple((rel.name, fwd) for rel, fwd in spath.half_steps)
            if key not in reach_cache:
                reach_cache[key] = touched_chain_rows(
                    self.hin, spath.half_steps, update
                )
            touched |= self._plan.shards_touching(
                spath.source_type, reach_cache[key]
            )
        return touched

    def _on_commit(self, update) -> None:
        """Commit hook: republish exactly the shards the batch touched."""
        with self._publish_mutex:
            touched = self._classify(update)
            if touched is None:
                self._plan = ShardPlan.compute(
                    self.hin,
                    sorted({s.source_type for s in self._served.values()}),
                    self._plan.shards,
                )
                touched = set(range(len(self._channels)))
            for shard in sorted(touched):
                self._republish_shard(shard)
            # Scatters await this stamp: untouched shards' generations
            # are bit-valid at the new epoch (see _classify), so the
            # epoch is fully served the moment the touched ones land.
            self._published_epoch = update.epoch

    def _await_publish(self) -> None:
        """Block until shard generations cover the current epoch.

        Called under the engine read lock: a commit's hooks run *after*
        the write lock releases, so a scatter that slipped in between
        commit and republication would otherwise pair new query rows
        with old shard slices.  The spin is bounded by the hook
        actually running (on the writer's thread, lock-free), so this
        resolves in publication time, not job time.
        """
        deadline = time.monotonic() + self._job_timeout
        while self._published_epoch != getattr(self.hin, "version", 0):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "shard republication did not catch up to the committed "
                    "epoch (commit hook stalled?)"
                )
            time.sleep(0.001)

    # ------------------------------------------------------------------
    # QueryService executor protocol
    # ------------------------------------------------------------------
    def _served_for(self, path):
        """The :class:`_ServedPath` answering *path*, or ``None``."""
        try:
            mp = self.hin.engine().symmetric_path(path)
        except Exception:
            return None
        return self._served.get(repr(mp.canonical_key()))

    def run_group(self, kind: str, payload) -> list[tuple]:
        """Dispatch one request group: scatter when shard-served, else
        execute parent-side.

        Shard-served top-k PathSim ("batch" groups and solo "pathsim"
        specs over a served path) scatters across every worker.  All
        other requests run on the parent's live engine under its own
        read lock — same epoch guarantees, no worker round trip — so
        the full verb surface works before any path was shard-served.

        An explicit ``mode="fused"`` also falls through to the parent
        engine: scattering is materialized by construction (workers
        hold slices of the half product), so forcing the fused kernel
        means answering from the parent's threaded rows instead.
        Answers are bit-identical either way.
        """
        if kind == "batch":
            path, k, exclude, plan, mode, objs = payload
            spath = self._served_for(path) if mode != "fused" else None
            if spath is not None:
                with self._stats_mutex:
                    self._scatters += 1
                return self._scatter_top_k(spath, objs, k, exclude, plan)
        elif kind == "solo" and payload and payload[0][0] == "pathsim":
            _, path, obj, k, exclude, plan, mode = payload[0]
            spath = self._served_for(path) if mode != "fused" else None
            if spath is not None:
                with self._stats_mutex:
                    self._scatters += 1
                return self._scatter_top_k(spath, [obj], k, exclude, plan)
        with self._stats_mutex:
            self._fallbacks += 1
        return _execute_job(self._parent_state, kind, payload)

    def _scatter_top_k(self, spath, objs, k, exclude, plan) -> list[tuple]:
        """Scatter one top-k group; merge exact per-query results.

        Runs under the scatter mutex (exclusive use of the shard
        channels) and the engine read lock.  The read lock is the epoch
        pin: commits queue behind it, so between `_await_publish` and
        the last collected partial, neither ``hin.version`` nor any
        shard generation can move — every worker provably answers from
        the same epoch the query rows were extracted at.
        """
        engine = self.hin.engine()
        mode = engine._plan_mode(plan)
        need = (int(k) + 1) if exclude else int(k)
        with self._scatter_mutex:
            with engine.lock.read():
                self._await_publish()
                epoch = getattr(self.hin, "version", 0)
                try:
                    idx, q_rows, q_diag = engine.pathsim_query_rows(
                        spath.mp, objs, plan=mode
                    )
                except BaseException:
                    # Unknown object / bad k shape: retry per query on
                    # the parent engine so each request gets its own
                    # error (or answer), like a worker's batch fallback.
                    return [
                        _execute_job(
                            self._parent_state,
                            "solo",
                            [("pathsim", str(spath.mp), obj, int(k),
                              bool(exclude), plan, "materialize")],
                        )[0]
                        for obj in objs
                    ]
                packed = (
                    q_rows.data, q_rows.indices, q_rows.indptr,
                    q_rows.shape, q_diag,
                )
                for s, channel in enumerate(self._channels):
                    channel.post(
                        "block", (spath.token, need, packed), self._shard_gens[s]
                    )
                per_shard = []
                for channel in self._channels:
                    try:
                        per_shard.append(channel.collect(self._job_timeout))
                    except BaseException as exc:  # noqa: BLE001
                        per_shard.append([("err", exc)] * len(objs))
                return self._merge_results(
                    spath, idx, per_shard, int(k), need, bool(exclude),
                    mode, epoch,
                )

    def _merge_results(
        self, spath, idx, per_shard, k, need, exclude, mode, epoch
    ) -> list[tuple]:
        """Exact k-way merge of per-shard partials into TopKResults.

        Mirrors the engine's ``_select`` exactly: the merged order is
        ``(-score, global index)`` (:func:`merge_top_k` over partials
        that each surfaced their own top ``need``), the query row is
        filtered under self-exclusion, names resolve through the same
        ``hin.name_of``, and the result carries the scatter's epoch.
        """
        node_type = spath.source_type
        statuses = []
        for q_pos, q_index in enumerate(idx):
            error = None
            parts = []
            for shard_statuses in per_shard:
                status, value = shard_statuses[q_pos]
                if status != "ok":
                    error = value
                    break
                parts.append(value)
            if error is not None:
                statuses.append(("err", error))
                continue
            merged_idx, merged_scores = merge_top_k(parts, need)
            q_index = int(q_index)
            pairs = finalize_top_k(
                zip(merged_idx, merged_scores), k,
                q_index if exclude else None,
            )
            statuses.append(
                (
                    "ok",
                    TopKResult(
                        [
                            (self.hin.name_of(node_type, j), score)
                            for j, score in pairs
                        ],
                        node_type=node_type,
                        query=self.hin.name_of(node_type, q_index),
                        path=str(spath.mp),
                        measure="pathsim",
                        network_version=epoch,
                        plan=mode,
                        mode="materialize",
                    ),
                )
            )
        return statuses

    # ------------------------------------------------------------------
    # Watch routing (partial re-scores on the owning shard)
    # ------------------------------------------------------------------
    def _partial_scorer(self, mp, queries, touched, plan):
        """Score a watch group's touched candidates on the owning shards.

        Installed on the network's :class:`~repro.watch.WatchManager`;
        the maintainer calls it from inside the commit hook.  Returns
        the ``(len(queries), len(touched))`` block — columns stitched
        from per-shard ``partial`` jobs in shard order, which *is*
        candidate order because *touched* is sorted and shard ranges
        are contiguous ascending — or ``None`` to decline (path not
        shard-served, or this epoch's republication hasn't run yet:
        commit hooks run in registration order, and a manager hook
        registered before this service would call in with the shards
        still one epoch behind).  Declines and errors both land on the
        maintainer's in-process fallback, so watch exactness never
        depends on the shard workers.
        """
        spath = self._served.get(repr(mp.canonical_key()))
        if spath is None or not queries:
            return None
        epoch = getattr(self.hin, "version", 0)
        if self._published_epoch != epoch:
            return None
        touched = np.asarray(touched, dtype=np.int64)
        if touched.size == 0:
            return None
        engine = self.hin.engine()
        mode = engine._plan_mode(plan)
        with self._scatter_mutex:
            if self._published_epoch != getattr(self.hin, "version", 0):
                return None
            _, q_rows, q_diag = engine.pathsim_query_rows(
                spath.mp, list(queries), plan=mode
            )
            packed = (
                q_rows.data, q_rows.indices, q_rows.indptr,
                q_rows.shape, q_diag,
            )
            posted = []
            for s, (lo, hi) in enumerate(self._plan.ranges[spath.source_type]):
                a = int(np.searchsorted(touched, lo, side="left"))
                b = int(np.searchsorted(touched, hi, side="left"))
                if b > a:
                    self._channels[s].post(
                        "partial",
                        (spath.token, touched[a:b] - lo, packed),
                        self._shard_gens[s],
                    )
                    posted.append(s)
            blocks = []
            for s in posted:
                status, value = self._channels[s].collect(self._job_timeout)[0]
                if status != "ok":
                    raise value  # the maintainer treats a raise as a decline
                blocks.append(value)
            with self._stats_mutex:
                self._partial_jobs += len(posted)
        if not blocks:
            return None
        return np.concatenate(blocks, axis=1)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def worker_memory(self) -> list[dict]:
        """One memory report per shard worker (see
        :meth:`ClusterService.worker_memory`; adds ``shard``).  The
        ``payload_bytes`` side is ~1/N of each served path's index —
        the sharded memory claim E21 measures."""
        with self._scatter_mutex:
            reports = []
            for s, channel in enumerate(self._channels):
                status, value = channel.call(
                    "info", [None], self._shard_gens[s], self._job_timeout
                )[0]
                if status != "ok":
                    raise value
                reports.append(value)
            return reports

    def stats(self) -> dict:
        """The embedded service's counters plus sharding ones:
        ``shards``, ``scatters``, ``fallbacks``, ``partial_jobs``,
        per-shard ``republications``/``shard_epochs``, and the
        current ``plan`` ranges."""
        out = self._service.stats()
        with self._stats_mutex:
            out.update(
                shards=len(self._channels),
                scatters=self._scatters,
                fallbacks=self._fallbacks,
                partial_jobs=self._partial_jobs,
            )
        with self._publish_mutex:
            out.update(
                republications=list(self._republications),
                shard_epochs=list(self._shard_epochs),
                plan={t: list(r) for t, r in self._plan.ranges.items()},
            )
        return out

    def close(self) -> None:
        """Drain, stop the workers, retire every shard generation.

        Also the failure-path cleanup for partial construction, so
        every branch tolerates resources never acquired.
        """
        if self._closed:
            return
        self._closed = True
        if self._hook is not None and self.hin is not None:
            self.hin.remove_commit_hook(self._hook)
        if self._scorer is not None and self.hin is not None:
            # Peek, never create: closing must not instantiate a
            # watch manager on a network that never watched.
            manager = getattr(self.hin, "_watch_manager", None)
            if manager is not None:
                manager.clear_partial_scorer(self._scorer)
        if self._service is not None:
            self._service.close()
        for channel in self._channels:
            channel.shutdown()
        for cache in self._published:
            cache.clear()  # on_evict disposes segments + descriptors
        if self._own_directory:
            shutil.rmtree(self._directory, ignore_errors=True)

    def __enter__(self) -> "ShardedClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedClusterService({self.hin!r}, "
            f"shards={len(self._channels)}, paths={len(self._served)}, "
            f"epoch={self.epoch})"
        )
