"""Warm-cache snapshots: persist a HIN plus its materialized products.

A fresh serving process pays twice before its first fast answer: once to
load the network and once to re-materialize every commuting matrix the
workload needs.  A snapshot removes both costs.
:func:`save_snapshot` serializes the network (schema, node names,
relation matrices) *and* the engine's cached materializations — prefix
products and PathSim ``(W, diag)`` pairs — as plain npz arrays next to
a JSON manifest; :func:`load_snapshot` rebuilds the HIN and installs the
cache entries, so the first query after startup is a cache hit.

Staleness is a correctness issue, not a performance one: a cache entry
from epoch *j* silently served against a network at epoch *k* ≠ *j*
returns wrong answers.  The manifest therefore records

* the **update epoch** (``hin.version``) the snapshot describes,
* a **schema hash** (node types + relations), and
* a **content hash** over every relation matrix's bytes,

and :func:`warm_from_snapshot` — the entry point that installs cached
products into an *existing* network's engine — refuses with
:class:`~repro.exceptions.SnapshotError` unless all three match the live
network.  :func:`load_snapshot` rebuilds the network from the same files
the hashes describe, re-verifying the content hash on the way in, so a
truncated or hand-edited snapshot fails loudly instead of serving
garbage.

The manifest also carries the network's standing-query registry
(:mod:`repro.watch`) as declarative specs: :func:`load_snapshot` and
:func:`warm_from_snapshot` re-register every persisted watch at the
restored epoch, so subscriptions resume maintenance across a restart.

On-disk layout (``path`` is a directory)::

    manifest.json             format, epoch, hashes, schema, entry index,
                              watch specs
    network-<epoch>-<h>.npz   relation matrices (CSR arrays)
    cache-<epoch>-<h>.npz     cached products / PathSim parts

Payload files carry content-addressed names and the manifest is
replaced atomically, so overwriting a snapshot in place is crash-safe:
a save that dies mid-way leaves the previous snapshot loadable.
Snapshots are portable across processes and machines (plain numpy
arrays, no pickling) but tied to one library format version.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zipfile
from contextlib import ExitStack
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SnapshotError
from repro.networks.hin import HIN
from repro.networks.schema import NetworkSchema

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "warm_from_snapshot",
    "schema_fingerprint",
    "network_fingerprint",
]

_FORMAT = "repro-hin-snapshot"
_FORMAT_VERSION = 1

# One save at a time per target directory (within this process):
# concurrent saves only hold the engine's shared READ lock, so without
# this they could interleave and cross-delete each other's payloads.
_save_locks: dict[str, threading.Lock] = {}
_save_locks_mutex = threading.Lock()


def _save_lock_for(path: Path) -> threading.Lock:
    key = str(path.resolve())
    with _save_locks_mutex:
        lock = _save_locks.get(key)
        if lock is None:
            lock = _save_locks[key] = threading.Lock()
        return lock


def _load_npz(path: Path, *, mmap: bool = False) -> dict:
    """Load an npz payload, mapping a missing file to SnapshotError.

    ``mmap=True`` returns zero-copy read-only views over the file
    (:func:`repro.serving.shm.mmap_npz`) instead of deserializing —
    the warm-start fast path.
    """
    if mmap:
        from repro.serving.shm import mmap_npz

        return mmap_npz(path)
    try:
        with np.load(path) as npz:
            return {name: npz[name] for name in npz.files}
    except FileNotFoundError:
        raise SnapshotError(
            f"snapshot payload missing: {path} (partial copy or "
            f"interrupted save)"
        ) from None
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        # A payload truncated mid-write (partial copy, full disk) fails
        # the zip/npy framing before it could fail the content hash.
        raise SnapshotError(
            f"snapshot payload unreadable: {path} (truncated or "
            f"corrupted: {exc})"
        ) from None


def schema_fingerprint(schema: NetworkSchema) -> str:
    """SHA-256 over the schema's types and relations (order included)."""
    payload = json.dumps(
        {
            "node_types": list(schema.node_types),
            "relations": [
                [r.name, r.source, r.target] for r in schema.relations
            ],
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def network_fingerprint(hin: HIN) -> str:
    """SHA-256 over node counts and every relation matrix's exact content.

    Two networks fingerprint equal iff they have the same counts and
    bit-identical CSR arrays — the property :func:`warm_from_snapshot`
    needs to decide that cached products are still valid.
    """
    return _content_fingerprint(
        [(t, hin.node_count(t)) for t in hin.schema.node_types],
        [(rel.name, hin.relation_matrix(rel.name)) for rel in hin.schema.relations],
    )


def _content_fingerprint(counts: list, matrices: list) -> str:
    """The :func:`network_fingerprint` hash from captured ``(name, value)``
    lists — lets a caller capture references under a lock and pay for the
    hashing after releasing it (matrices are replaced, never mutated)."""
    digest = hashlib.sha256()
    for t, count in counts:
        digest.update(f"{t}={count};".encode())
    for name, m in matrices:
        m = m.tocsr()
        if not m.has_canonical_format:
            # Canonicalize a COPY: fingerprinting must never mutate the
            # live network (sum_duplicates rewrites the CSR arrays in
            # place, racing concurrent readers of the same matrix).
            m = m.copy()
            m.sum_duplicates()
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(m.indptr).tobytes())
        digest.update(np.ascontiguousarray(m.indices).tobytes())
        digest.update(np.ascontiguousarray(m.data, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _write_npz(path: Path, arrays: dict) -> None:
    """Write *arrays* as npz via a temp file + atomic rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        np.savez(f, **arrays)
    os.replace(tmp, path)


def _arrays_fingerprint(arrays) -> str:
    """SHA-256 over a name→array mapping (sorted names, raw bytes)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


def _csr_arrays(prefix: str, m: sp.csr_matrix, arrays: dict) -> dict:
    """Record *m*'s CSR arrays under *prefix* and return its descriptor."""
    m = m.tocsr()
    arrays[f"{prefix}/data"] = m.data
    arrays[f"{prefix}/indices"] = m.indices
    arrays[f"{prefix}/indptr"] = m.indptr
    return {"shape": list(m.shape)}


def _csr_from(prefix: str, arrays, shape) -> sp.csr_matrix:
    return sp.csr_matrix(
        (
            arrays[f"{prefix}/data"],
            arrays[f"{prefix}/indices"],
            arrays[f"{prefix}/indptr"],
        ),
        shape=tuple(shape),
    )


def _build_entry_index(entries, arrays: dict, csr_writer) -> list[dict]:
    """Flatten engine cache *entries* into *arrays*; return their index.

    The single definition of the on-disk/in-segment entry schema
    (``kind``/``steps``/``prefix`` plus the writer's descriptor) —
    snapshots and shared-memory generations both serialize through it,
    so the two formats cannot drift apart.  *csr_writer* is the
    ``(prefix, matrix, arrays) -> descriptor`` recorder (snapshots
    preserve dtypes; generations normalize index dtypes for zero-copy
    attach).
    """
    index = []
    for i, (key, value) in enumerate(entries):
        kind, steps = key
        prefix = f"entry{i}"
        if kind == "pathsim":
            w, diag = value
            desc = csr_writer(f"{prefix}/w", w, arrays)
            arrays[f"{prefix}/diag"] = np.asarray(diag, dtype=np.float64)
        else:
            desc = csr_writer(prefix, value, arrays)
        index.append(
            {
                "kind": kind,
                "steps": [[name, bool(fwd)] for name, fwd in steps],
                "prefix": prefix,
                **desc,
            }
        )
    return index


def _restore_entries(entry_index, arrays, csr_reader) -> list[tuple]:
    """The inverse of :func:`_build_entry_index`: engine ``(key, value)``
    pairs from a serialized entry index over *arrays*."""
    entries: list[tuple] = []
    for desc in entry_index:
        key = (
            desc["kind"],
            tuple((name, bool(fwd)) for name, fwd in desc["steps"]),
        )
        if desc["kind"] == "pathsim":
            w = csr_reader(f"{desc['prefix']}/w", arrays, desc["shape"])
            diag = np.asarray(arrays[f"{desc['prefix']}/diag"])
            entries.append((key, (w, diag)))
        else:
            entries.append(
                (key, csr_reader(desc["prefix"], arrays, desc["shape"]))
            )
    return entries


def _resolve_engine(target):
    """Accept a HIN or an engine; return ``(hin, engine)``."""
    if isinstance(target, HIN):
        return target, target.engine()
    hin = getattr(target, "hin", None)
    if hin is None or not hasattr(target, "snapshot_entries"):
        raise TypeError(
            f"save_snapshot() takes a HIN or a MetaPathEngine, "
            f"got {type(target).__name__}"
        )
    return hin, target


def save_snapshot(target, path) -> dict:
    """Write a warm-cache snapshot of *target* (HIN or engine) to *path*.

    Parameters
    ----------
    target:
        A :class:`~repro.networks.hin.HIN` (its shared engine's cache is
        captured) or a :class:`~repro.engine.MetaPathEngine`.
    path:
        Directory to create/overwrite.  Files written: ``manifest.json``
        plus uniquely-named payload npz files referenced by it.

    The engine's read lock is held while the network and cache are
    extracted, so the snapshot describes exactly one update epoch even
    while writers are active.  For a *detached* engine (constructed with
    kwargs), the network's shared engine's lock is held as well — that
    is the lock ``hin.apply()`` commits under, so the single-epoch
    guarantee covers detached caches too.

    Overwriting an existing snapshot is crash-safe: payload files carry
    content-addressed names and the manifest is swapped in atomically
    (write-then-rename) only after they are fully written, so a save
    that dies mid-way leaves the previous snapshot loadable; files the
    new manifest no longer references are removed last.  Returns the
    manifest dict.
    """
    hin, engine = _resolve_engine(target)
    out = Path(path)
    out.mkdir(parents=True, exist_ok=True)

    with ExitStack() as stack:
        stack.enter_context(engine.lock.read())
        shared = hin.engine() if isinstance(hin, HIN) else None
        if shared is not None and shared is not engine:
            stack.enter_context(shared.lock.read())
        epoch = getattr(hin, "version", 0)
        entries = engine.snapshot_entries()

        net_arrays: dict[str, np.ndarray] = {}
        relations = []
        captured_matrices = []
        for rel in hin.schema.relations:
            matrix = hin.relation_matrix(rel.name)
            captured_matrices.append((rel.name, matrix))
            desc = _csr_arrays(f"rel/{rel.name}", matrix, net_arrays)
            relations.append(
                {
                    "name": rel.name,
                    "source": rel.source,
                    "target": rel.target,
                    **desc,
                }
            )
        node_counts = {t: hin.node_count(t) for t in hin.schema.node_types}

        names = {}
        for t in hin.schema.node_types:
            type_names = hin.names(t)
            if type_names is not None:
                names[t] = type_names

        cache_arrays: dict[str, np.ndarray] = {}
        entry_index = _build_entry_index(entries, cache_arrays, _csr_arrays)

    # The standing-query registry is captured OUTSIDE the read-lock
    # window: spec_dicts() takes the registry mutex, and the canonical
    # lock order is registry mutex -> engine lock (the maintainer's
    # commit hook holds the mutex while computing).  Taking them in the
    # other order here could deadlock against a queued writer.  Specs
    # are declarative — a registration racing the save lands in this
    # snapshot or the next, both valid.
    manager = getattr(hin, "_watch_manager", None) if isinstance(hin, HIN) else None
    watch_specs = manager.spec_dicts() if manager is not None else []

    # Hashing happens AFTER the locks release: the captured matrix and
    # array references stay valid (updates replace matrices, never
    # mutate them), and the O(total-bytes) SHA-256 work must not extend
    # the window during which a queued writer stalls new queries.
    content_hash = _content_fingerprint(list(node_counts.items()), captured_matrices)
    cache_hash = _arrays_fingerprint(cache_arrays)
    files = {
        "network": f"network-{int(epoch)}-{content_hash[:12]}.npz",
        "cache": f"cache-{int(epoch)}-{cache_hash[:12]}.npz",
    }
    manifest = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "epoch": int(epoch),
        "schema_hash": schema_fingerprint(hin.schema),
        "content_hash": content_hash,
        "cache_hash": cache_hash,
        "files": files,
        "node_types": list(hin.schema.node_types),
        "node_counts": node_counts,
        "relations": relations,
        "names": names,
        "entries": entry_index,
        "watches": watch_specs,
    }

    try:
        manifest_text = json.dumps(manifest, indent=2)
    except TypeError as exc:
        raise SnapshotError(
            f"node names are not JSON-serializable: {exc}"
        ) from None
    # Crash-safe ordering: payloads first (each via tmp + atomic rename,
    # so a re-save at the same epoch never rewrites a referenced file in
    # place), manifest swapped in atomically last, then orphans from
    # previous or crashed saves removed.  Serialized per directory so
    # concurrent saves cannot delete each other's payloads.
    with _save_lock_for(out):
        _write_files(out, files, net_arrays, cache_arrays, manifest_text)
    return manifest


def _write_files(
    out: Path, files: dict, net_arrays: dict, cache_arrays: dict, manifest_text: str
) -> None:
    """Write one snapshot's payloads + manifest and clean prior strays."""
    _write_npz(out / files["network"], net_arrays)
    _write_npz(out / files["cache"], cache_arrays)
    tmp_manifest = out / "manifest.json.tmp"
    tmp_manifest.write_text(manifest_text, encoding="utf-8")
    os.replace(tmp_manifest, out / "manifest.json")
    # Remove only files matching the snapshot's OWN naming scheme: the
    # target directory may contain unrelated user files.
    keep = set(files.values())
    stray_patterns = (
        "network-*.npz",
        "cache-*.npz",
        "network-*.npz.tmp",
        "cache-*.npz.tmp",
        "manifest.json.tmp",
    )
    for pattern in stray_patterns:
        for stray in out.glob(pattern):
            if stray.name not in keep:
                stray.unlink(missing_ok=True)


def _read_manifest(path) -> dict:
    snap = Path(path)
    manifest_path = snap / "manifest.json"
    if not manifest_path.exists():
        raise SnapshotError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"unreadable snapshot manifest: {exc}") from None
    if manifest.get("format") != _FORMAT:
        raise SnapshotError(
            f"not a {_FORMAT} snapshot: format={manifest.get('format')!r}"
        )
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {manifest.get('format_version')!r} "
            f"not supported (expected {_FORMAT_VERSION})"
        )
    return manifest


def _load_entries(manifest: dict, path, *, mmap: bool = False) -> list[tuple]:
    """Rebuild (and hash-verify) the engine cache entries of *manifest*."""
    entries: list[tuple] = []
    if not manifest["entries"]:
        return entries
    arrays = _load_npz(Path(path) / manifest["files"]["cache"], mmap=mmap)
    # Hash verification reads every byte — the exact cost the mmap path
    # exists to skip (its contract is "trusted snapshot").
    if not mmap and _arrays_fingerprint(arrays) != manifest["cache_hash"]:
        raise SnapshotError(
            f"snapshot at {path} failed cache verification "
            f"(cached products do not match the manifest hash)"
        )
    return _restore_entries(manifest["entries"], arrays, _csr_from)


def load_snapshot(path, *, mmap: bool = False) -> HIN:
    """Rebuild the snapshotted network with a pre-warmed engine.

    Parameters
    ----------
    path:
        A snapshot directory written by :func:`save_snapshot`.
    mmap:
        ``False`` (default) deserializes the payloads into process
        memory and re-verifies the manifest's content hash — a
        corrupted snapshot raises
        :class:`~repro.exceptions.SnapshotError`.  ``True`` returns a
        network whose matrices are zero-copy, read-only views mapped
        straight over the payload files: nothing is deserialized, the
        OS page cache shares one copy across every process mapping the
        same snapshot, and startup is O(1) in the payload size.  The
        content hash is **not** re-verified on this path (verification
        reads every byte, which is exactly the cost being skipped);
        mmap-load only snapshots you trust, e.g. ones this process
        wrote.

    Returns
    -------
    A new :class:`~repro.networks.hin.HIN` whose
    :attr:`~repro.networks.hin.HIN.version` is the snapshot's recorded
    epoch and whose shared engine already holds every materialization
    the snapshot captured — the first query is a cache hit.

    Raises
    ------
    repro.exceptions.SnapshotError
        On a missing/corrupt manifest, missing payloads, or (eager
        path) payload bytes that fail hash verification.
    """
    manifest = _read_manifest(path)
    schema = NetworkSchema(
        manifest["node_types"],
        [(r["name"], r["source"], r["target"]) for r in manifest["relations"]],
    )
    arrays = _load_npz(Path(path) / manifest["files"]["network"], mmap=mmap)
    matrices = {
        r["name"]: _csr_from(f"rel/{r['name']}", arrays, r["shape"])
        for r in manifest["relations"]
    }
    hin = HIN(
        schema,
        manifest["node_counts"],
        matrices,
        node_names=manifest["names"] or None,
        # Snapshots hold canonical CSR; the mmap views are read-only and
        # must not be re-normalized in place.
        validate=not mmap,
    )
    if not mmap and network_fingerprint(hin) != manifest["content_hash"]:
        raise SnapshotError(
            f"snapshot at {path} failed content verification "
            f"(relation matrices do not match the manifest hash)"
        )
    hin._version = int(manifest["epoch"])
    engine = hin.engine()
    engine.warm_entries(_load_entries(manifest, path, mmap=mmap))
    # Resume persisted standing queries at the restored epoch: each
    # spec re-registers (initial result from the warmed cache) and its
    # subscription stays reachable via hin.watches().subscriptions().
    # `.get`: pre-watch snapshots simply carry no registry.
    watch_specs = manifest.get("watches") or []
    if watch_specs:
        hin.watches().restore(watch_specs)
    return hin


def warm_from_snapshot(hin: HIN, path) -> int:
    """Install a snapshot's cached products into *hin*'s shared engine.

    Parameters
    ----------
    hin:
        The live network whose engine cache to warm.
    path:
        A snapshot directory written by :func:`save_snapshot`.

    The snapshot must describe **this** network at its **current**
    state: the schema hash, the update epoch, and the relation content
    hash must all match — a snapshot taken before the latest
    ``hin.apply()`` is *stale* and will not be installed.  The checks
    and the install run atomically under the engine's write lock, so an
    update landing concurrently cannot slip between validation and
    installation.

    Returns
    -------
    The number of cache entries installed (0 for a cold snapshot —
    valid, not an error).

    Raises
    ------
    repro.exceptions.SnapshotError
        On a missing/unreadable manifest (an empty cache directory
        included), truncated payloads, or any schema/epoch/content
        mismatch with the live network.
    """
    manifest = _read_manifest(path)
    if manifest["schema_hash"] != schema_fingerprint(hin.schema):
        raise SnapshotError(
            f"snapshot at {path} was taken on a different schema "
            f"(schema hash mismatch)"
        )
    def check_epoch() -> int:
        """Raise SnapshotError unless the manifest's epoch matches."""
        epoch = getattr(hin, "version", 0)
        if manifest["epoch"] != epoch:
            raise SnapshotError(
                f"stale snapshot: network is at epoch {epoch}, snapshot was "
                f"taken at epoch {manifest['epoch']}; re-run save_snapshot() "
                f"after updates"
            )
        return epoch

    # Optimistic pre-check before the expensive cache load: the common
    # stale case (a restart after updates landed) fails on a one-integer
    # comparison instead of reading and hashing the whole cache payload.
    # The full (content-hashed) validation runs once, under the lock.
    check_epoch()
    entries = _load_entries(manifest, path)
    engine = hin.engine()
    with engine.lock.write():
        # Re-validate under the lock: an update may have landed between
        # the pre-check and here, and nothing may slip between this
        # check and the install.
        epoch = check_epoch()
        if manifest["content_hash"] != network_fingerprint(hin):
            raise SnapshotError(
                f"stale snapshot: relation content differs from the network "
                f"(content hash mismatch at shared epoch {epoch})"
            )
        installed = engine.warm_entries(entries)
    # Watches resume AFTER the write lock releases — registration
    # computes initial results under the engine read lock, which must
    # not nest inside the write hold.  restore() skips specs already
    # registered, so warming a network that kept its live registry
    # never duplicates maintenance.
    watch_specs = manifest.get("watches") or []
    if watch_specs:
        hin.watches().restore(watch_specs)
    return installed
