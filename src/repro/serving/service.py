"""QueryService — a concurrent, batching front end over one network.

The facade (:class:`~repro.query.session.QuerySession`) answers one
query at a time on the calling thread.  A serving process has a
different shape: many clients issue small top-k queries concurrently,
most of them over the same handful of meta-paths, while a writer
occasionally lands an update batch.  The LDBC SIGMOD-2014 contest
analyses (PAPERS.md) locate the throughput on such workloads in two
places — *sharing* work between concurrent queries and *batching*
same-shape queries into single matrix operations — and this module
implements exactly those two moves on top of the engine's thread-safe
serving layer:

* **Worker pool.**  The :class:`~repro.serving.api.ServingAPI` verbs
  (``similar``, ``connected``, ``rank``, ``watch``) enqueue a request
  and return a :class:`concurrent.futures.Future`; a small pool of
  worker threads drains the queue.  Queries execute under the engine's read
  lock, so they interleave freely with each other and serialize only
  against update commits (``hin.apply()``), each answer computed
  entirely at one update epoch.
* **Request coalescing.**  Identical requests in flight at the same
  time (same operation, same spelling of the arguments) share one
  computation and one future — a thundering herd of ``similar("SIGMOD",
  "V-P-A-P-V", k=10)`` costs one row slice.
* **Opportunistic batching.**  When a worker picks up a PathSim top-k
  request, it drains every queued request with the same
  ``(path, k, exclude)`` shape (up to ``max_batch``) and answers them
  with one call to
  :meth:`~repro.engine.MetaPathEngine.pathsim_top_k_batch` — one sparse
  × dense block product instead of one mat-vec per query.  Under load
  the batch assembles itself; an idle service degenerates to per-query
  execution with no added latency.

Batched answers are *bit-identical* to per-query answers (the block
product runs the same summation per row), which benchmark E17 asserts
while measuring the throughput gain.

Example
-------
>>> from repro.serving import QueryService                # doctest: +SKIP
>>> with QueryService(hin, workers=2) as svc:             # doctest: +SKIP
...     futures = [svc.similar(v, "V-P-A-P-V", k=5) for v in venues]
...     answers = [f.result() for f in futures]
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

from .api import ServingAPI

__all__ = ["QueryService"]


@dataclass
class _Request:
    """One queued unit of work, fanned out to one future per submitter.

    Coalesced submitters share the computation but each holds its own
    :class:`~concurrent.futures.Future`, so one client cancelling its
    future never cancels another client's answer.

    Every request carries two execution forms: closures (``call`` /
    ``batch_call``) for the in-process path, and a declarative,
    picklable ``spec`` for process-backed executors
    (:class:`~repro.serving.cluster.ClusterService`) — the same queued
    request can execute either way.
    """

    op: str
    call: object  # () -> result, for solo execution
    futures: list  # one Future per (coalesced) submitter
    key: tuple | None = None  # coalescing identity (None: never coalesce)
    batch_key: tuple | None = None  # grouping shape (None: not batchable)
    batch_call: object = None  # (queries) -> [results], for grouped execution
    query: object = None  # this request's query object within a batch
    spec: tuple | None = None  # declarative form for remote execution
    batch_spec: tuple | None = None  # (path, k, exclude, plan, mode): remote batching


class QueryService(ServingAPI):
    """Thread-safe query serving over one HIN's shared engine.

    The client verbs (``similar``, ``connected``, ``rank``, ``watch``)
    come from :class:`~repro.serving.api.ServingAPI` — this class is
    the *core* behind them: the ``_submit_*`` bodies below build each
    request's closure and picklable spec forms and feed the queue.

    Parameters
    ----------
    hin:
        The network to serve.  The service always executes through the
        network's *shared* session and engine (``hin.query()`` /
        ``hin.engine()``), so its cache is the same one every other
        caller warms — and so update commits via ``hin.apply()``
        coordinate with in-flight queries through the engine's
        read–write lock.
    workers:
        Worker-thread count.  Batching does most of the work; a small
        pool (2–4) is usually right even for many clients.
    max_batch:
        Upper bound on how many same-shape top-k requests one worker
        groups into a single block product.
    session:
        Override the session object (e.g. one with a different SimRank
        memo bound).  It must execute on the network's *shared* engine —
        a session built over a detached engine is rejected, because
        ``hin.apply()`` only coordinates with the shared engine's lock.
    executor:
        Optional execution backend: an object with
        ``run_group(kind, payload) -> [("ok", value) | ("err", error)]``
        — :class:`~repro.serving.cluster.ClusterService` passes itself.
        When set, request groups are *dispatched* (as picklable specs)
        instead of computed under the engine read lock on this thread;
        coalescing and batching still happen here, so a thundering herd
        costs one dispatched job either way.  Coalescing keys are then
        epoch-prefixed: the in-process path guarantees "a post-update
        submitter never receives a pre-update answer" by retiring
        requests inside the read lock, and the executor path gets the
        same guarantee by never coalescing across an epoch boundary.

    Use as a context manager, or call :meth:`close` explicitly; both
    drain queued work before returning.
    """

    def __init__(
        self,
        hin,
        *,
        workers: int = 2,
        max_batch: int = 64,
        session=None,
        executor=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.hin = hin
        self._executor = executor
        self._session = session if session is not None else hin.query()
        self._engine = self._session.engine
        if executor is None and self._engine is not hin.engine():
            # A detached engine holds its own lock — the one hin.apply()
            # does NOT commit under — so queries through it could observe
            # torn mid-commit network state.  Concurrent serving is only
            # sound on the shared engine.
            raise ValueError(
                "QueryService requires a session on the network's shared "
                "engine (hin.engine()); detached engines cannot coordinate "
                "with hin.apply()"
            )
        self._max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._work: deque[_Request] = deque()
        self._inflight: dict[tuple, _Request] = {}
        self._closed = False
        self._stats = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "cancelled": 0,
            "batches": 0,
            "batched_requests": 0,
            "largest_batch": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(int(workers))
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Submission core (behind the ServingAPI verbs)
    # ------------------------------------------------------------------
    def _serving_core(self) -> "QueryService":
        """This service *is* the core — the verbs submit to it directly."""
        return self

    def _submit_similar(
        self,
        obj,
        path,
        k: int = 10,
        *,
        measure: str = "pathsim",
        exclude_self: bool = True,
        plan: str | None = None,
        mode: str | None = None,
    ) -> Future:
        """Build and enqueue a similarity request (see
        :meth:`ServingAPI.similar` for the client contract)."""
        if measure == "pathsim":
            try:
                mp = self._session.path(path)
            except Exception as exc:  # uniform error contract: via the future
                return self._failed(exc)
            shape = (
                "similar", mp.canonical_key(), int(k), bool(exclude_self),
                plan, mode,
            )
            return self._submit(
                self._safe_key("similar", shape[1:] + (obj,)),
                lambda key: _Request(
                    op="similar",
                    call=lambda: self._engine.pathsim_top_k(
                        mp, obj, k, exclude_query=exclude_self, plan=plan,
                        mode=mode,
                    ),
                    futures=[Future()],
                    key=key,
                    batch_key=shape,
                    batch_call=lambda queries: self._engine.pathsim_top_k_batch(
                        mp, queries, k, exclude_query=exclude_self, plan=plan,
                        mode=mode,
                    ),
                    query=obj,
                    spec=(
                        "pathsim", str(mp), obj, int(k), bool(exclude_self),
                        plan, mode,
                    ),
                    batch_spec=(str(mp), int(k), bool(exclude_self), plan, mode),
                ),
            )
        return self._submit(
            self._safe_key(
                "similar",
                (str(path), obj, int(k), measure, bool(exclude_self), plan),
            ),
            lambda key: _Request(
                op="similar",
                call=lambda: self._session.similar(
                    obj, path, k,
                    measure=measure, exclude_self=exclude_self, plan=plan,
                ),
                futures=[Future()],
                key=key,
                spec=(
                    "similar", obj, str(path), int(k), measure,
                    bool(exclude_self), plan,
                ),
            ),
        )

    def _submit_connected(
        self, obj, path, k: int = 10, *, exclude_self: bool = False,
        plan: str | None = None,
    ) -> Future:
        """Build and enqueue a connectivity request (see
        :meth:`ServingAPI.connected` for the client contract)."""
        try:
            mp = self._session.path(path)
        except Exception as exc:  # uniform error contract: via the future
            return self._failed(exc)
        return self._submit(
            self._safe_key(
                "connected",
                (mp.canonical_key(), int(k), bool(exclude_self), plan, obj),
            ),
            lambda key: _Request(
                op="connected",
                call=lambda: self._engine.top_k_connectivity(
                    mp, obj, k, exclude_query=exclude_self, plan=plan
                ),
                futures=[Future()],
                key=key,
                spec=(
                    "connected", obj, str(mp), int(k), bool(exclude_self), plan
                ),
            ),
        )

    def _submit_rank(self, target, **kwargs) -> Future:
        """Build and enqueue a ranking request (see
        :meth:`ServingAPI.rank` for the client contract)."""
        return self._submit(
            self._safe_key("rank", (target, tuple(sorted(kwargs.items())))),
            lambda key: _Request(
                op="rank",
                call=lambda: self._session.rank(target, **kwargs),
                futures=[Future()],
                key=key,
                spec=("rank", target, tuple(sorted(kwargs.items()))),
            ),
        )

    def _submit_watch(
        self,
        obj,
        path,
        k: int = 10,
        *,
        measure: str = "pathsim",
        exclude_self: bool | None = None,
        plan: str | None = None,
    ) -> Future:
        """Build and enqueue a watch registration (see
        :meth:`ServingAPI.watch` for the client contract).

        Registrations never coalesce and always execute in this
        process, executor or not: result maintenance lives with the
        writer (:class:`~repro.serving.cluster.ClusterService` keeps it
        in the parent and fans results out from there).
        """
        return self._submit(
            None,
            lambda key: _Request(
                op="watch",
                call=lambda: self.hin.watches().watch(
                    path,
                    obj,
                    k=k,
                    measure=measure,
                    exclude_self=exclude_self,
                    plan=plan,
                ),
                futures=[Future()],
                key=key,
            ),
        )

    def prewarm(self, *paths) -> "QueryService":
        """Materialize *paths* into the shared cache before serving."""
        self._session.prewarm(*paths)
        return self

    @staticmethod
    def _failed(exc: BaseException) -> Future:
        """A pre-failed future: submit-time errors use the same channel
        as execution errors."""
        future = Future()
        future.set_exception(exc)
        return future

    def _safe_key(self, op: str, parts: tuple) -> tuple | None:
        """A coalescing key, or ``None`` when any argument is unhashable.

        With an executor, the key is epoch-prefixed: execution happens
        in another process outside this engine's read lock, so the
        retire-inside-the-lock guarantee does not apply — refusing to
        coalesce across an epoch boundary restores "a post-update
        submitter never receives a pre-update answer".
        """
        key = (op,) + parts
        if self._executor is not None:
            key = (getattr(self.hin, "version", 0),) + key
        try:
            hash(key)
        except TypeError:
            return None
        return key

    # ------------------------------------------------------------------
    # Queue machinery
    # ------------------------------------------------------------------
    def _submit(self, key: tuple | None, factory) -> Future:
        """Coalesce onto an in-flight request for *key*, or enqueue a new
        one built by *factory* — which only runs on a coalescing miss, so
        the hot duplicate path never constructs futures it throws away."""
        with self._cond:
            if self._closed:
                raise RuntimeError("QueryService is closed")
            if key is not None:
                existing = self._inflight.get(key)
                if existing is not None:
                    # Share the computation, not the future: each
                    # coalesced submitter gets its own, so cancelling
                    # one never cancels another's answer.
                    self._stats["coalesced"] += 1
                    future = Future()
                    existing.futures.append(future)
                    return future
            request = factory(key)
            if key is not None:
                self._inflight[key] = request
            self._stats["submitted"] += 1
            self._work.append(request)
            self._cond.notify()
        return request.futures[0]

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._work and not self._closed:
                    self._cond.wait()
                if not self._work:
                    return  # closed and fully drained
                first = self._work.popleft()
                group = [first]
                if first.batch_key is not None and self._work:
                    # Bounded drain: scan at most a few batches' worth of
                    # queue — unbounded scanning would churn the whole
                    # deque under this lock for every batchable request
                    # (O(n²) on deep mixed-shape queues).  Requests past
                    # the window simply batch on a later pass.
                    scan_limit = max(self._max_batch * 4, 256)
                    skipped: deque[_Request] = deque()
                    while (
                        self._work
                        and len(group) < self._max_batch
                        and len(skipped) + len(group) <= scan_limit
                    ):
                        other = self._work.popleft()
                        if other.batch_key == first.batch_key:
                            group.append(other)
                        else:
                            skipped.append(other)
                    while skipped:  # restore non-matching requests in order
                        self._work.appendleft(skipped.pop())
                if len(group) > 1:
                    self._stats["batches"] += 1
                    self._stats["batched_requests"] += len(group)
                    self._stats["largest_batch"] = max(
                        self._stats["largest_batch"], len(group)
                    )
            self._execute(group)

    def _execute(self, group: list[_Request]) -> None:
        # Honour Future.cancel(): a submitter's cancelled future is
        # dropped (set_running_or_notify_cancel flips the survivors to
        # RUNNING, after which cancel() can no longer race set_result);
        # a request whose every submitter cancelled is retired without
        # computing.  All under the queue lock, so no duplicate can
        # join a request that is about to be retired.
        with self._cond:
            active = []
            for request in group:
                request.futures = [
                    f for f in request.futures if f.set_running_or_notify_cancel()
                ]
                if request.futures:
                    active.append(request)
                else:
                    self._retire_locked(request, cancelled=True)
        if active:
            self._run(active)

    def _run(self, group: list[_Request]) -> None:
        # The engine's own entry points take the read lock; holding it
        # across the whole request additionally covers facade operations
        # that read network state outside the engine (degree rankings,
        # projections), so every answer is computed at one epoch.
        #
        # Retirement (_finish) happens INSIDE the read lock: an update
        # cannot commit until the lock is released, so every submitter
        # that coalesced onto this request did so before the next epoch
        # existed — a submitter arriving after a commit always starts a
        # fresh request and never receives a pre-update answer.
        # Delivery happens OUTSIDE the lock on every path: a future's
        # done-callbacks run on this thread, and one that takes the
        # write lock (hin.apply, clear_cache) would otherwise hit the
        # read-to-write upgrade guard.
        deliveries: list[tuple[Future, object, object]] = []
        if group[0].op == "watch":
            # Watch registration manages its own locking (registry
            # mutex, then the engine read lock inside the initial
            # computation — the canonical order).  Taking the read lock
            # here first would invert that order against the maintainer
            # running in a commit hook, and a queued writer between the
            # two would close the cycle into deadlock.  Executor or
            # not, registration is local: maintenance lives with the
            # writer.
            self._compute(group, deliveries)
        elif self._executor is not None:
            self._dispatch(group, deliveries)
        else:
            with self._engine.lock.read():
                self._compute(group, deliveries)
        for future, result, error in deliveries:
            self._resolve(future, result=result, error=error)

    def _dispatch(self, group: list[_Request], deliveries: list) -> None:
        """Execute *group* through the process-backed executor.

        The group travels as its declarative specs — one ``batch`` job
        when the worker can answer it with a single block product, else
        one ``solo`` job — and comes back as one aligned status per
        request (workers retry a failed batch per-query, so statuses
        never collapse).  Epoch consistency needs no lock here: workers
        attach immutable generations, so each job is answered entirely
        at one epoch, and epoch-prefixed coalescing keys (see
        :meth:`_safe_key`) keep post-update submitters off pre-update
        requests.
        """
        try:
            if len(group) > 1:
                path, k, exclude, plan, mode = group[0].batch_spec
                statuses = self._executor.run_group(
                    "batch",
                    (path, k, exclude, plan, mode, [r.query for r in group]),
                )
            else:
                statuses = self._executor.run_group("solo", [group[0].spec])
        except BaseException as exc:  # noqa: BLE001 — futures carry failures
            for futures in self._finish(group):
                for future in futures:
                    deliveries.append((future, None, exc))
            return
        for futures, (status, value) in zip(self._finish(group), statuses):
            for future in futures:
                if status == "ok":
                    deliveries.append((future, value, None))
                else:
                    deliveries.append((future, None, value))

    def _compute(self, group: list[_Request], deliveries: list) -> None:
        """Execute *group* (caller holds the read lock), retire it, and
        record the per-future deliveries for after the lock releases."""
        try:
            if len(group) == 1:
                results = [group[0].call()]
            else:
                results = group[0].batch_call([r.query for r in group])
        except BaseException as exc:  # noqa: BLE001 — futures carry failures
            if len(group) == 1:
                for future in self._finish(group)[0]:
                    deliveries.append((future, None, exc))
            else:
                # One bad request must not poison the co-batched ones:
                # retry each solo so every future gets its own result
                # or its own error.
                for request in group:
                    self._compute([request], deliveries)
            return
        for futures, result in zip(self._finish(group), results):
            for future in futures:
                deliveries.append((future, result, None))

    @staticmethod
    def _resolve(future: Future, *, result=None, error=None) -> None:
        """Deliver to one submitter, tolerating a mid-compute cancel.

        Futures that coalesced onto a request after its group started
        running are still PENDING here; setting their result is legal,
        but one cancelled in that window would raise InvalidStateError.
        """
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except InvalidStateError:
            pass  # the submitter cancelled while we computed

    def _finish(self, group: list[_Request]) -> list[list[Future]]:
        """Retire *group* from the coalescing window; return the futures
        to deliver to (snapshotted under the lock — once a request is
        out of ``_inflight``, no new submitter can join it)."""
        with self._cond:
            fan_out = []
            for request in group:
                self._retire_locked(request)
                fan_out.append(list(request.futures))
            return fan_out

    def _retire_locked(self, request: _Request, *, cancelled: bool = False) -> None:
        """Drop one request from the coalescing map (caller holds the lock).

        Cancelled-before-computing requests count as ``cancelled``, not
        ``completed`` — the counters describe work actually performed.
        """
        self._stats["cancelled" if cancelled else "completed"] += 1
        if request.key is not None and self._inflight.get(request.key) is request:
            del self._inflight[request.key]

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters: submitted/coalesced/completed/cancelled requests,
        batch shapes (``batches``, ``batched_requests``,
        ``largest_batch``), plus two nested sections — ``planner`` (the
        engine's association-order counters and default mode) and
        ``watches`` (the standing-query registry's maintenance
        counters; zeros when nothing was ever watched)."""
        with self._cond:
            out = dict(self._stats)
        out["planner"] = self._engine.planner_info()
        # Peek, never create: stats() on a watch-free service must not
        # install the registry's commit hook.
        manager = getattr(self.hin, "_watch_manager", None)
        out["watches"] = (
            manager.stats()
            if manager is not None
            else {"watches": 0, "subscriptions": 0}
        )
        return out

    def cache_info(self):
        """The shared engine's cache counters (hits/misses/evictions)."""
        return self._engine.cache_info()

    @property
    def epoch(self) -> int:
        """The served network's current update epoch."""
        return getattr(self.hin, "version", 0)

    def close(self) -> None:
        """Stop accepting work, drain the queue, and join the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for t in self._threads:
            t.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"QueryService({self.hin!r}, workers={len(self._threads)}, "
            f"served={s['completed']}, coalesced={s['coalesced']}, "
            f"batches={s['batches']})"
        )
