"""ClusterService — multi-process serving over shared-memory generations.

:class:`~repro.serving.QueryService` made serving concurrent, but its
worker pool lives in one Python process: the phase-fair lock buys
fairness while the GIL caps the dense-product hot paths at roughly one
core.  This module is the step past that ceiling — the shape the
SIGMOD-2014-contest analyses land on for graph query serving at scale:
**read-only index state shared across worker processes, updates
committed centrally by a single writer.**

Architecture
------------

* The **parent** owns the live, mutable network.  All updates keep
  flowing through the single-writer ``hin.apply()`` path; a commit hook
  (:meth:`repro.networks.hin.HIN.add_commit_hook`) exports every
  committed epoch as a new immutable shared-memory **generation**
  (:mod:`repro.serving.shm`) and bumps a shared generation counter.
* Each of N **worker processes** attaches the current generation
  zero-copy — relation matrices and the warm commuting-matrix cache are
  numpy views over the shared segment — and answers query jobs against
  it.  Before picking up each job a worker compares the shared counter
  with its attached generation and, when behind, attaches the new one
  and atomically swaps; generations are immutable, so a worker can
  never serve a torn matrix: it answers entirely at one epoch or
  entirely at the next.
* The parent-facing API is the **same futures surface** as
  :class:`~repro.serving.QueryService` — in fact it *is* a
  ``QueryService`` whose execution backend dispatches request groups to
  worker processes instead of computing under the engine read lock, so
  request coalescing and same-shape batching keep working unchanged
  (one block product per batch, now on a core of its own).

Warm starts attach straight off a snapshot:
``ClusterService(warm_snapshot=path)`` publishes a generation whose
payloads are the snapshot's npz files, memory-mapped by every worker
through the shared OS page cache — one page-in instead of N
deserializations.

Benchmark E18 measures the throughput against single-process
``QueryService`` serving and asserts bit-identical answers; see
``docs/GUIDE.md`` → "Cluster serving" for usage and
``docs/BENCHMARKS.md`` → "Deployment sizing" for how to size the
process count.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import pickle
import queue as _queue
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.serving.api import ServingAPI
from repro.serving.service import QueryService
from repro.serving.shm import (
    attach_generation,
    generation_from_snapshot,
    publish_generation,
)
from repro.utils.cache import LRUCache

__all__ = ["ClusterService"]

_SHUTDOWN = None  # task-queue sentinel


def _default_start_method() -> str:
    """``fork`` where the platform offers it (fast, shares the imported
    interpreter), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _pickles(value) -> bool:
    """Whether *value* survives a pickle round trip."""
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


def _picklable(error: BaseException) -> BaseException:
    """*error* itself when it survives pickling, else a faithful stand-in
    (a result queue must never choke on an exotic exception)."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _execute_spec(state, spec):  # pragma: no cover
    """Run one declarative request spec against an attached generation."""
    op = spec[0]
    if op == "pathsim":
        _, path, obj, k, exclude, plan, mode = spec
        return state.engine.pathsim_top_k(
            path, obj, k, exclude_query=exclude, plan=plan, mode=mode
        )
    if op == "similar":
        _, obj, path, k, measure, exclude, plan = spec
        return state.hin.query().similar(
            obj, path, k, measure=measure, exclude_self=exclude, plan=plan
        )
    if op == "connected":
        _, obj, path, k, exclude, plan = spec
        return state.engine.top_k_connectivity(
            path, obj, k, exclude_query=exclude, plan=plan
        )
    if op == "rank":
        _, target, kwargs = spec
        return state.hin.query().rank(target, **dict(kwargs))
    raise ValueError(f"unknown request spec {op!r}")


def _process_rss() -> int:  # pragma: no cover
    """This process's resident set size in bytes.

    Reads ``/proc/self/status`` (current RSS) where it exists, falling
    back to ``getrusage`` peak RSS — no third-party dependency either
    way.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _execute_job(state, kind, payload):  # pragma: no cover
    """One job -> aligned ``("ok", value) | ("err", error)`` statuses.

    ``batch`` jobs answer every query with one block product — the same
    ``pathsim_top_k_batch`` call the in-process service makes, so
    answers stay bit-identical — and fall back to per-query execution
    when the batch raises, so one bad request cannot poison its
    co-batched neighbours.  ``info`` jobs report the worker's memory
    footprint (process RSS plus the attached generation's shared
    payload bytes) for deployment sizing and the E18/E21 memory-ratio
    benchmarks.
    """
    if kind == "info":
        return [
            (
                "ok",
                {
                    "rss_bytes": _process_rss(),
                    "payload_bytes": getattr(state, "payload_bytes", 0),
                    "generation": state.generation,
                    "epoch": state.epoch,
                },
            )
        ]
    if kind == "batch":
        path, k, exclude, plan, mode, objs = payload
        try:
            results = state.engine.pathsim_top_k_batch(
                path, objs, k, exclude_query=exclude, plan=plan, mode=mode
            )
            return [("ok", result) for result in results]
        except BaseException:
            return [
                _execute_job(
                    state, "solo",
                    [("pathsim", path, obj, k, exclude, plan, mode)],
                )[0]
                for obj in objs
            ]
    out = []
    for spec in payload:
        try:
            out.append(("ok", _execute_spec(state, spec)))
        except BaseException as exc:  # noqa: BLE001 — status travels the queue
            out.append(("err", _picklable(exc)))
    return out


def _close_attachment(state) -> None:  # pragma: no cover
    """Release one attached generation: break the hin<->engine reference
    cycle promptly so the segment mapping can actually unmap."""
    state.close()
    gc.collect()


def _worker_main(  # pragma: no cover — runs in child processes
    worker_id, task_queue, result_queue, gen_value, gen_dir, untrack
):
    """Worker-process loop: attach the current generation, serve jobs.

    Generation swaps happen *between* jobs: the worker polls the shared
    counter before each job and attaches the newer descriptor when
    behind.  Each job carries an **epoch floor** — the parent's update
    epoch when the job was dispatched — and the worker refuses to
    answer from an older generation: a commit's publish may still be
    copying when the next request arrives, so the worker waits for the
    counter to catch up rather than serve a pre-update answer.  The
    previous attachments live in a small generation-stamped LRU whose
    eviction hook closes their segments — the worker-side half of
    generation retirement.
    """
    current = None
    attached = LRUCache(2, on_evict=lambda _key, state: _close_attachment(state))

    def ensure_generation(min_epoch):
        """The current generation, at epoch >= *min_epoch* (waits for an
        in-flight publish; raises after a 60 s deadline)."""
        nonlocal current
        deadline = time.monotonic() + 60.0
        while True:
            target = gen_value.value
            if current is None or current.generation != target:
                try:
                    state = attach_generation(
                        Path(gen_dir) / f"gen-{target}.json", untrack=untrack
                    )
                except FileNotFoundError:
                    # Raced a republish-and-retire; re-read the counter.
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"worker {worker_id} could not attach "
                            f"generation {target}"
                        ) from None
                    time.sleep(0.002)
                    continue
                current = state
                attached.bump_generation()
                attached.put(target, state)
                attached.evict_written_before(attached.generation)
            if current.epoch >= min_epoch:
                return current
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"worker {worker_id} waited for epoch {min_epoch} but "
                    f"generation {current.generation} is at epoch "
                    f"{current.epoch} (publish stalled?)"
                )
            time.sleep(0.002)

    while True:
        job = task_queue.get()
        if job is _SHUTDOWN:
            break
        job_id, kind, payload, min_epoch = job
        try:
            state = ensure_generation(min_epoch)
            statuses = _execute_job(state, kind, payload)
        except BaseException as exc:  # noqa: BLE001 — deliver, don't die
            size = len(payload[4]) if kind == "batch" else len(payload)
            statuses = [("err", _picklable(exc))] * size
        try:
            pickle.dumps(statuses)
        except Exception:
            # An unpicklable "ok" value would kill the queue's feeder
            # thread silently; sanitize per status so the parent always
            # hears back.
            statuses = [
                (status, value)
                if _pickles(value)
                else ("err", RuntimeError(f"result not picklable: {value!r:.200}"))
                for status, value in statuses
            ]
        result_queue.put((job_id, statuses))
    attached.clear()


class _WorkerChannel:
    """One worker process plus its private task/result queues.

    A channel is checked out exclusively for the duration of one job
    (the free-list in :class:`ClusterService` guarantees it), so the
    synchronous put-then-get protocol needs no response routing.
    """

    def __init__(self, ctx, worker_id, gen_value, gen_dir, target=None):
        self.task_queue = ctx.Queue()
        self.result_queue = ctx.Queue()
        self.jobs = 0
        # Workers share the parent's resource tracker under fork AND
        # spawn (multiprocessing hands children the tracker fd), so the
        # publisher's create-time registration is the single
        # authoritative one — workers must NOT untrack their
        # attachments, or they would strip it.  untrack=True is only
        # for foreign processes attaching outside multiprocessing.
        untrack = False
        self.process = ctx.Process(
            # The loop is pluggable so shard workers
            # (repro.serving.shards) reuse the channel protocol — same
            # queues, same job framing, different attach/execute body.
            target=target if target is not None else _worker_main,
            name=f"repro-cluster-{worker_id}",
            args=(
                worker_id,
                self.task_queue,
                self.result_queue,
                gen_value,
                gen_dir,
                untrack,
            ),
            daemon=True,
        )
        self.process.start()

    def post(self, kind, payload, min_epoch: int) -> int:
        """Enqueue one job without waiting for its answer.

        The payload is pickle-validated *here*, on the calling thread:
        ``Queue.put`` pickles in a background feeder thread whose
        failure would otherwise surface only as a silent
        ``timeout``-long hang.  Pair every ``post`` with a
        :meth:`collect` before the next one — the channel routes by a
        single outstanding job id.  Splitting the round trip is what
        lets a scatter (:mod:`repro.serving.shards`) put one job on
        *every* shard's queue before collecting any answer, so shards
        compute concurrently instead of in sequence.
        """
        try:
            pickle.dumps(payload)
        except Exception as exc:
            raise TypeError(
                f"request arguments are not picklable for cluster "
                f"dispatch: {exc}"
            ) from exc
        self.jobs += 1
        self.task_queue.put((self.jobs, kind, payload, min_epoch))
        return self.jobs

    def collect(self, timeout: float):
        """Wait for the posted job's statuses; raises when the worker died."""
        while True:
            try:
                job_id, statuses = self.result_queue.get(timeout=min(timeout, 1.0))
            except _queue.Empty:
                timeout -= 1.0
                if not self.process.is_alive():
                    raise RuntimeError(
                        f"cluster worker {self.process.name} died "
                        f"(exit code {self.process.exitcode})"
                    ) from None
                if timeout <= 0:
                    raise TimeoutError(
                        f"cluster worker {self.process.name} did not answer"
                    ) from None
                continue
            if job_id == self.jobs:
                return statuses
            # A stale answer from a job whose waiter gave up; drop it.

    def call(self, kind, payload, min_epoch: int, timeout: float):
        """Synchronous job round trip (:meth:`post` + :meth:`collect`)."""
        self.post(kind, payload, min_epoch)
        return self.collect(timeout)

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop the worker: sentinel, join, terminate stragglers."""
        try:
            self.task_queue.put(_SHUTDOWN)
        except (ValueError, OSError):
            pass
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=join_timeout)
        self.process.close()
        self.task_queue.close()
        self.result_queue.close()


class ClusterService(ServingAPI):
    """Multi-process query serving with shared-memory state.

    Parameters
    ----------
    hin:
        The network to serve.  The parent keeps the only mutable copy;
        updates go through ``hin.apply()`` as usual and re-publish
        automatically.  Omit it (``None``) together with
        *warm_snapshot* to cold-start the parent from a snapshot too.
    processes:
        Worker-process count — size it to cores, not clients (the
        parent coalesces and batches, so a handful of processes absorbs
        many clients).  Defaults to the usable CPU count capped at 4.
    max_batch:
        Per-job bound on same-shape top-k batching, as in
        :class:`~repro.serving.QueryService`.
    warm_snapshot:
        Optional snapshot directory (from
        :func:`repro.serving.save_snapshot`).  Generation 0 then points
        at the snapshot's npz payloads and every worker memory-maps
        them zero-copy instead of deserializing — the cluster warm
        start.  Requires the snapshot to describe *hin*'s current
        epoch when *hin* is given.
    directory:
        Where generation descriptors live (a private temp directory by
        default).
    mp_context:
        ``multiprocessing`` start method (``"fork"`` where available,
        else ``"spawn"``).  With ``fork``, construct the cluster before
        starting your own threads.
    keep_generations:
        How many published generations stay attachable at once (>= 2,
        so a worker mid-swap never finds its target retired).
    job_timeout:
        Seconds a dispatched job may take before the parent gives up on
        that worker.

    Raises
    ------
    ValueError
        On a non-positive process count, or when neither *hin* nor
        *warm_snapshot* is given.
    repro.exceptions.SnapshotError
        When *warm_snapshot* is unreadable or describes a different
        epoch than the live *hin*.

    Use as a context manager, or call :meth:`close` explicitly.  The
    futures surface is the shared :class:`~repro.serving.api.ServingAPI`
    (``similar``, ``connected``, ``rank``, ``watch``) — one client's
    code does not change when serving moves from threads to processes.
    Watch registration and maintenance always run in the *parent* — the
    single-writer process where ``hin.apply()`` commits — never on a
    worker: the maintainer's commit hook runs alongside the generation
    publish and pushes fan out from here, while workers keep answering
    the one-shot query surface from their attached generations.
    """

    def __init__(
        self,
        hin=None,
        *,
        processes: int | None = None,
        max_batch: int = 64,
        warm_snapshot=None,
        directory=None,
        mp_context: str | None = None,
        keep_generations: int = 2,
        job_timeout: float = 120.0,
    ):
        if hin is None and warm_snapshot is None:
            raise ValueError("ClusterService needs a hin, a warm_snapshot, or both")
        if processes is None:
            try:
                usable = len(os.sched_getaffinity(0))
            except AttributeError:
                usable = os.cpu_count() or 1
            processes = max(1, min(usable, 4))
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._ctx = multiprocessing.get_context(mp_context or _default_start_method())
        # Start the resource tracker BEFORE forking workers: forked
        # children then share the parent's tracker instead of each
        # lazily spawning their own (whose exit-time cleanup would warn
        # about — or on some Pythons unlink — segments it never owned).
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._directory = (
            Path(directory)
            if directory
            else Path(tempfile.mkdtemp(prefix="repro-cluster-"))
        )
        self._own_directory = directory is None
        self._job_timeout = float(job_timeout)
        self._gen_counter = 0
        self._gen_value = self._ctx.Value("L", 0)
        self._publish_mutex = threading.Lock()
        self._published = LRUCache(
            max(2, int(keep_generations)),
            on_evict=lambda _key, generation: generation.dispose(),
        )
        self._jobs_dispatched = 0
        self._generations_published = 0
        self._closed = False
        self._channels: list[_WorkerChannel] = []
        self._parent_state = None
        self._hook = None
        self._service = None
        self.hin = hin

        # Everything past the directory is resource acquisition; a
        # failure part-way (stale snapshot, fork error) must release
        # what was already acquired instead of leaking segments,
        # processes, and temp directories until interpreter exit.
        try:
            if warm_snapshot is not None:
                first = generation_from_snapshot(
                    warm_snapshot, directory=self._directory, generation=0
                )
                self._published.put(0, first)
                if hin is None:
                    # Cold parent: attach the same mmap-backed generation
                    # the workers will use — one page-in warms everyone.
                    self._parent_state = attach_generation(first.path)
                    self.hin = hin = self._parent_state.hin
                elif getattr(hin, "version", 0) != first.epoch:
                    from repro.exceptions import SnapshotError

                    raise SnapshotError(
                        f"warm_snapshot is at epoch {first.epoch} but the "
                        f"live network is at epoch "
                        f"{getattr(hin, 'version', 0)}; re-run "
                        f"save_snapshot() after updates"
                    )
            else:
                first = publish_generation(
                    hin, hin.engine(), directory=self._directory, generation=0
                )
                self._published.put(0, first)

            # Workers fork/spawn BEFORE any service thread exists (fork
            # while this object's own threads run would be unsound).
            for i in range(int(processes)):
                self._channels.append(
                    _WorkerChannel(
                        self._ctx, i, self._gen_value, str(self._directory)
                    )
                )
            self._free: _queue.Queue = _queue.Queue()
            for channel in self._channels:
                self._free.put(channel)

            self._hook = hin.add_commit_hook(self._on_commit)
            self._service = QueryService(
                hin, workers=len(self._channels), max_batch=max_batch, executor=self
            )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Futures API (ServingAPI verbs submit through the embedded core)
    # ------------------------------------------------------------------
    def _serving_core(self) -> QueryService:
        """The embedded :class:`QueryService` — it owns the request
        queue; this cluster is its execution backend."""
        return self._service

    def prewarm(self, *paths) -> "ClusterService":
        """Materialize *paths* in the parent cache and republish, so
        every worker serves them warm from shared memory."""
        self.hin.engine().prewarm(list(paths))
        self.publish()
        return self

    # ------------------------------------------------------------------
    # Generation lifecycle
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The latest published shared-memory generation counter."""
        return self._gen_counter

    @property
    def epoch(self) -> int:
        """The served network's current update epoch."""
        return getattr(self.hin, "version", 0)

    def publish(self) -> int:
        """Export the parent's current state as a new generation.

        Runs automatically from the ``hin.apply()`` commit hook; call it
        manually after warming the parent cache out-of-band.  Returns
        the new generation counter.
        """
        with self._publish_mutex:
            self._gen_counter += 1
            generation = publish_generation(
                self.hin,
                self.hin.engine(),
                directory=self._directory,
                generation=self._gen_counter,
            )
            self._published.bump_generation()
            self._published.put(self._gen_counter, generation)
            self._generations_published += 1
            # Publication point: workers swap on their next job.
            self._gen_value.value = self._gen_counter
            return self._gen_counter

    def _on_commit(self, _applied) -> None:
        """Commit hook: every applied batch publishes a new generation."""
        self.publish()

    # ------------------------------------------------------------------
    # QueryService executor protocol
    # ------------------------------------------------------------------
    def run_group(self, kind: str, payload) -> list[tuple]:
        """Dispatch one request group to a free worker (blocking).

        The executor half of the :class:`~repro.serving.QueryService`
        contract: returns one ``("ok", value) | ("err", error)`` status
        per request in the group.  The job carries the parent's current
        epoch as a floor — dispatch happens at or after submission, so
        a worker that honours the floor can never hand a post-update
        submitter a pre-update answer, even while the commit's publish
        is still copying.
        """
        min_epoch = self.epoch
        channel = self._free.get()
        try:
            self._jobs_dispatched += 1
            return channel.call(kind, payload, min_epoch, self._job_timeout)
        finally:
            self._free.put(channel)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def worker_memory(self) -> list[dict]:
        """One memory report per worker process.

        Each report carries ``rss_bytes`` (the worker's resident set —
        includes its share of the interpreter and of faulted shared
        pages), ``payload_bytes`` (the attached generation's
        shared-memory/file payload — the part that is *shared*, not
        replicated, across workers), and the ``generation``/``epoch``
        the worker is serving.  Every channel is checked out first so
        each worker answers exactly once, then all are returned; calls
        interleave safely with serving (they just wait their turn for
        the channels).
        """
        channels = [self._free.get() for _ in self._channels]
        try:
            reports = []
            for channel in channels:
                status, value = channel.call(
                    "info", [None], self.epoch, self._job_timeout
                )[0]
                if status != "ok":
                    raise value
                reports.append(value)
            return reports
        finally:
            for channel in channels:
                self._free.put(channel)

    def stats(self) -> dict:
        """The embedded service's counters plus cluster-level ones
        (``processes``, ``jobs_dispatched``, ``generations_published``,
        ``generation``)."""
        out = self._service.stats()
        out.update(
            processes=len(self._channels),
            jobs_dispatched=self._jobs_dispatched,
            generations_published=self._generations_published,
            generation=self._gen_counter,
        )
        return out

    def close(self) -> None:
        """Drain queued work, stop the workers, retire every generation.

        Also the failure-path cleanup for a partially constructed
        cluster, so every branch tolerates resources that were never
        acquired.
        """
        if self._closed:
            return
        self._closed = True
        if self._hook is not None and self.hin is not None:
            self.hin.remove_commit_hook(self._hook)
        if self._service is not None:
            self._service.close()
        for channel in self._channels:
            channel.shutdown()
        self._published.clear()  # on_evict disposes segments + descriptors
        if self._parent_state is not None:
            # Keep serving the caller's hin object (it may outlive the
            # cluster) — only the attachment bookkeeping is dropped; the
            # mmap pages release with the matrices' last reference.
            self._parent_state._resources = []
        if self._own_directory:
            shutil.rmtree(self._directory, ignore_errors=True)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ClusterService({self.hin!r}, processes={len(self._channels)}, "
            f"generation={self._gen_counter}, epoch={self.epoch})"
        )
