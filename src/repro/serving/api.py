"""ServingAPI — the one client-facing verb surface of every service.

:class:`~repro.serving.QueryService`,
:class:`~repro.serving.ClusterService` and
:class:`~repro.serving.ShardedClusterService` used to each spell out the
same five submission methods; the thread service carried the real
bodies and the clusters carried kwargs-forwarding copies that drifted
one docstring at a time.  This mixin is the collapse: **one documented
entry point per verb** — :meth:`similar`, :meth:`connected`,
:meth:`rank`, :meth:`watch` — implemented once, driven by the same
declarative picklable request specs that already travel to worker
processes, and inherited by every service.

A service plugs in by implementing :meth:`_serving_core`, returning the
:class:`~repro.serving.QueryService` that owns its request queue (the
thread service returns itself; the clusters return their embedded
service).  Everything else — coalescing, batching, futures, executor
dispatch — is the core's existing machinery.

Every verb returns a :class:`concurrent.futures.Future`.  Submission
never raises for bad arguments: path or object errors are delivered
through the future, and only a closed service raises at submit time.

Deprecations
------------
:meth:`top_k` — the engine-parity ``(path, obj)`` spelling of
:meth:`similar` — is retained as a thin shim that emits a
``DeprecationWarning`` and forwards.  New code calls
``similar(obj, path, k)``; the tier-1 CI runs one leg with
``-W error:ServingAPI:DeprecationWarning`` so internal code can never
regrow calls to the shimmed spelling.
"""

from __future__ import annotations

import warnings
from concurrent.futures import Future

__all__ = ["ServingAPI"]


class ServingAPI:
    """Mixin: the unified serving verbs, shared by every service class.

    Subclasses implement :meth:`_serving_core`; the verbs here build the
    request (closure + picklable spec forms) through the core's
    submission machinery and hand back the future.
    """

    def _serving_core(self):
        """The :class:`~repro.serving.QueryService` owning the request
        queue these verbs submit to."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _serving_core()"
        )

    # ------------------------------------------------------------------
    # The verbs (one documented entry point each)
    # ------------------------------------------------------------------
    def similar(
        self,
        obj,
        path,
        k: int = 10,
        *,
        measure: str = "pathsim",
        exclude_self: bool = True,
        plan: str | None = None,
        mode: str | None = None,
    ) -> Future:
        """Enqueue a top-*k* similarity query; returns a future.

        ``measure="pathsim"`` requests are batchable: queued requests
        over the same ``(path, k, exclude_self, plan, mode)`` shape are
        answered by one block product (scattered across shards on a
        :class:`~repro.serving.ShardedClusterService`).  Other measures
        execute singly through the session.

        Parameters
        ----------
        obj:
            Query object — a name, or an index into the path's source
            type.
        path:
            Any meta-path spelling (DSL string, type list,
            ``MetaPath``); must be symmetric for ``pathsim``.
        k:
            How many peers to return.
        measure:
            ``"pathsim"`` (engine-served, batchable) or any measure
            ``QuerySession.similar`` accepts.
        exclude_self:
            Drop the query object from its own answer.
        plan:
            Association-order override (``"auto"``/``"left"``, default
            the engine's policy).  Part of the coalescing and batching
            identity — answers are plan-independent, but work sharing
            never silently overrides an explicit request.
        mode:
            Top-k kernel override (``"fused"``/``"materialize"``/
            ``"auto"``, default the engine's policy; pathsim only).
            Also part of the coalescing/batching identity, and also
            answer-independent — ``"fused"`` threads query rows through
            the relation chain without materializing the path, which
            ``"auto"`` picks by itself for cold paths.

        Raises
        ------
        RuntimeError
            When the service is already closed (the only submit-time
            raise).  Every other failure — bad path, unknown object,
            engine error — is delivered through the returned future,
            never raised on the submitting thread.
        """
        return self._serving_core()._submit_similar(
            obj, path, k, measure=measure, exclude_self=exclude_self,
            plan=plan, mode=mode,
        )

    def connected(
        self,
        obj,
        path,
        k: int = 10,
        *,
        exclude_self: bool = False,
        plan: str | None = None,
    ) -> Future:
        """Enqueue a top-*k* connectivity (path-count) query; returns a
        future.

        Parameters
        ----------
        obj:
            Query object of the path's source type.
        path:
            Any meta-path spelling; asymmetric paths are fine
            (connectivity counts path instances, it does not normalize).
        k:
            How many targets to return.
        exclude_self:
            Drop the query object (round-trip paths only; enforced when
            the request executes, with the error on the future).
        plan:
            Association-order override (``"auto"``/``"left"``, default
            the engine's policy).

        Raises
        ------
        RuntimeError
            When the service is already closed; execution failures
            arrive through the future.
        """
        return self._serving_core()._submit_connected(
            obj, path, k, exclude_self=exclude_self, plan=plan
        )

    def rank(self, target, **kwargs) -> Future:
        """Enqueue a ranking query; returns a future.

        Parameters
        ----------
        target:
            A node type or meta-path, exactly as
            :meth:`repro.query.QuerySession.rank` takes it.
        **kwargs:
            Passed through to ``QuerySession.rank`` (``by=``, ``path=``,
            ``method=``, ...).

        Raises
        ------
        RuntimeError
            When the service is already closed; execution failures
            arrive through the future.
        """
        return self._serving_core()._submit_rank(target, **kwargs)

    def watch(
        self,
        obj,
        path,
        k: int = 10,
        *,
        measure: str = "pathsim",
        exclude_self: bool | None = None,
        plan: str | None = None,
    ) -> Future:
        """Enqueue a standing-query registration; the future resolves
        with a :class:`~repro.watch.Subscription`.

        The subscription's ``(epoch, result)`` pushes then flow through
        its own ``next()`` futures and ``drain()`` queue — the same
        futures machinery the query surface uses, but long-lived.
        Registrations never coalesce (each caller gets its own
        subscription) and always execute with the single writer: on a
        cluster, registration and maintenance run in the *parent* —
        where ``hin.apply()`` commits — and pushes fan out from there,
        while workers keep answering the one-shot query surface from
        their attached generations, untouched.

        Parameters
        ----------
        obj:
            Query object of the path's source type.
        path:
            Any meta-path spelling (symmetric for ``pathsim``).
        k:
            Result size to maintain.
        measure:
            ``"pathsim"`` or ``"connectivity"``.
        exclude_self:
            Defaults to the measure's convention (``True`` for pathsim,
            ``False`` for connectivity).
        plan:
            Association-order override for the watch's recomputations.
        """
        return self._serving_core()._submit_watch(
            obj, path, k, measure=measure, exclude_self=exclude_self, plan=plan
        )

    # ------------------------------------------------------------------
    # Deprecated spellings (shims)
    # ------------------------------------------------------------------
    def top_k(
        self,
        path,
        obj,
        k: int = 10,
        *,
        exclude_self: bool = True,
        plan: str | None = None,
    ) -> Future:
        """Deprecated engine-parity spelling of :meth:`similar`.

        .. deprecated::
            Call ``similar(obj, path, k, ...)`` instead — one verb, one
            argument order, on every service.  This shim forwards and
            emits a ``DeprecationWarning``.
        """
        warnings.warn(
            "ServingAPI.top_k(path, obj, ...) is deprecated; call "
            "similar(obj, path, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.similar(obj, path, k, exclude_self=exclude_self, plan=plan)
