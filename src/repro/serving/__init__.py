"""Concurrent query serving: worker pools, process clusters, snapshots.

The production-facing layer above the query facade.  Every deployment
shape exposes the **same client surface** — the
:class:`~repro.serving.api.ServingAPI` verbs ``similar`` / ``connected``
/ ``rank`` / ``watch`` (plus the deprecated ``top_k`` spelling) — so
code written against one service class runs unchanged against the
others; only construction differs.  Five pieces:

* thread-safe engine serving — the engine's read–write lock
  (:attr:`repro.engine.MetaPathEngine.lock`) lets any number of query
  threads share one cache while ``hin.apply()`` commits update batches
  atomically between them;
* :class:`QueryService` — a worker pool that accepts the ServingAPI
  verbs as futures, coalesces duplicate in-flight requests, and batches
  same-meta-path top-k queries into single block products;
* :class:`ClusterService` — the same surface over N worker *processes*,
  each attaching the **whole** network's canonical-CSR matrices and
  warm cache zero-copy through shared memory
  (:mod:`repro.serving.shm`); updates commit centrally in the parent
  and publish immutable epoch-stamped generations that workers swap
  atomically — real multi-core throughput past the GIL;
* :class:`ShardedClusterService` — the same surface over N workers that
  each hold ~1/N of the served paths' state
  (:mod:`repro.serving.shards`): top-k runs as scatter → per-shard
  partial top-k → exact tie-stable merge, bit-identical to the
  single-process answer, and updates republish only the shards they
  touch;
* snapshots — :func:`save_snapshot` / :func:`load_snapshot` /
  :func:`warm_from_snapshot` persist the network plus its materialized
  commuting matrices so a new process starts warm (optionally
  memory-mapped, zero-copy), with epoch and schema/content hashes
  guarding against stale caches.

See ``docs/GUIDE.md`` for the task-oriented walkthrough (§8 covers
replicated → sharded migration), ``docs/ARCHITECTURE.md`` → "Serving &
concurrency" and "Sharded serving" for the design, and benchmarks
E17/E18/E21 for the measured throughput and memory.
"""

from repro.serving.api import ServingAPI
from repro.serving.cluster import ClusterService
from repro.serving.service import QueryService
from repro.serving.shards import ShardedClusterService, ShardPlan
from repro.serving.snapshot import (
    load_snapshot,
    network_fingerprint,
    save_snapshot,
    schema_fingerprint,
    warm_from_snapshot,
)

__all__ = [
    "ServingAPI",
    "QueryService",
    "ClusterService",
    "ShardedClusterService",
    "ShardPlan",
    "save_snapshot",
    "load_snapshot",
    "warm_from_snapshot",
    "schema_fingerprint",
    "network_fingerprint",
]
