"""Concurrent query serving: worker pools, process clusters, snapshots.

The production-facing layer above the query facade.  Four pieces:

* thread-safe engine serving — the engine's read–write lock
  (:attr:`repro.engine.MetaPathEngine.lock`) lets any number of query
  threads share one cache while ``hin.apply()`` commits update batches
  atomically between them;
* :class:`QueryService` — a worker pool that accepts
  ``similar``/``top_k``/``connected``/``rank`` requests as futures,
  coalesces duplicate in-flight requests, and batches same-meta-path
  top-k queries into single block products;
* :class:`ClusterService` — the same futures surface over N worker
  *processes*, each attaching the network's canonical-CSR matrices and
  warm cache zero-copy through shared memory
  (:mod:`repro.serving.shm`); updates commit centrally in the parent
  and publish immutable epoch-stamped generations that workers swap
  atomically — real multi-core throughput past the GIL;
* snapshots — :func:`save_snapshot` / :func:`load_snapshot` /
  :func:`warm_from_snapshot` persist the network plus its materialized
  commuting matrices so a new process starts warm (optionally
  memory-mapped, zero-copy), with epoch and schema/content hashes
  guarding against stale caches.

See ``docs/GUIDE.md`` for the task-oriented walkthrough,
``docs/ARCHITECTURE.md`` → "Serving & concurrency" for the design, and
benchmarks E17/E18 for the measured throughput.
"""

from repro.serving.cluster import ClusterService
from repro.serving.service import QueryService
from repro.serving.snapshot import (
    load_snapshot,
    network_fingerprint,
    save_snapshot,
    schema_fingerprint,
    warm_from_snapshot,
)

__all__ = [
    "QueryService",
    "ClusterService",
    "save_snapshot",
    "load_snapshot",
    "warm_from_snapshot",
    "schema_fingerprint",
    "network_fingerprint",
]
