"""Concurrent query serving: worker pools, batching, warm-cache snapshots.

The production-facing layer above the query facade.  Three pieces:

* thread-safe engine serving — the engine's read–write lock
  (:attr:`repro.engine.MetaPathEngine.lock`) lets any number of query
  threads share one cache while ``hin.apply()`` commits update batches
  atomically between them;
* :class:`QueryService` — a worker pool that accepts
  ``similar``/``top_k``/``connected``/``rank`` requests as futures,
  coalesces duplicate in-flight requests, and batches same-meta-path
  top-k queries into single block products;
* snapshots — :func:`save_snapshot` / :func:`load_snapshot` /
  :func:`warm_from_snapshot` persist the network plus its materialized
  commuting matrices so a new process starts warm, with epoch and
  schema/content hashes guarding against stale caches.

See ``docs/ARCHITECTURE.md`` → "Serving & concurrency" for the design
and benchmark E17 for the measured throughput.
"""

from repro.serving.service import QueryService
from repro.serving.snapshot import (
    load_snapshot,
    network_fingerprint,
    save_snapshot,
    schema_fingerprint,
    warm_from_snapshot,
)

__all__ = [
    "QueryService",
    "save_snapshot",
    "load_snapshot",
    "warm_from_snapshot",
    "schema_fingerprint",
    "network_fingerprint",
]
