"""Shared-memory generations: zero-copy network state across processes.

One Python process caps the dense-product hot paths at roughly one core
— the GIL serializes scipy's CSR kernels no matter how many threads the
:class:`~repro.serving.QueryService` pool runs.  Scaling past that means
*processes*, and processes must not each own a private copy of the
relation matrices and warm commuting-matrix cache: on a production
network those are the dominant memory cost, and N deserializations are
the dominant startup cost.

This module is the sharing substrate.  A **generation** is one
published, immutable snapshot of a network's serveable state — schema,
node counts and names, canonical-CSR relation matrices, the engine's
warm cache entries, and the update epoch they all describe — whose
array payloads live in buffers any process can map:

* ``multiprocessing.shared_memory`` segments
  (:func:`publish_generation`): the parent packs every array into one
  segment; workers attach by name and wrap the buffer in numpy views
  without copying a byte.
* mmap-backed snapshot payloads (:func:`mmap_npz` /
  :func:`generation_from_snapshot`): the npz files a warm-cache
  snapshot already wrote are uncompressed zip members, so each array
  can be ``np.memmap``-ed in place — a cluster warm start costs one
  page-in of the file (shared through the OS page cache by every
  worker) instead of N full deserializations.

A generation is described by a JSON-able **descriptor** naming the
buffers and the structure over them; :func:`attach_generation` turns a
descriptor back into a live :class:`~repro.networks.hin.HIN` plus a
warm :class:`~repro.engine.MetaPathEngine`, still zero-copy: matrices
are constructed directly over the mapped buffers
(``HIN(..., validate=False)`` skips the normalizations that would write
them).  Generations are immutable once published — a new epoch means a
*new* generation, never an edit — so a worker can never observe a torn
matrix: it either still serves the old generation or has atomically
swapped to the complete new one.

:class:`~repro.serving.cluster.ClusterService` drives the lifecycle:
publish on start, re-publish from the ``hin.apply()`` commit hook,
retire old generations once workers have moved on.
"""

from __future__ import annotations

import json
import os
import zipfile
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SnapshotError
from repro.networks.hin import HIN
from repro.networks.schema import NetworkSchema
from repro.serving.snapshot import (
    _build_entry_index,
    _read_manifest,
    _restore_entries,
)

__all__ = [
    "mmap_npz",
    "export_arrays",
    "attach_arrays",
    "publish_generation",
    "generation_from_snapshot",
    "attach_generation",
    "PublishedGeneration",
    "AttachedGeneration",
]

_FORMAT = "repro-shm-generation"
_FORMAT_VERSION = 1
_ALIGN = 64  # cache-line align every array inside a segment


# ----------------------------------------------------------------------
# mmap-backed npz loading
# ----------------------------------------------------------------------
def _read_member_header(f, info):
    """Data offset of one zip member, from its local file header."""
    f.seek(info.header_offset)
    header = f.read(30)
    if len(header) != 30 or header[:4] != b"PK\x03\x04":
        return None
    name_len = int.from_bytes(header[26:28], "little")
    extra_len = int.from_bytes(header[28:30], "little")
    return info.header_offset + 30 + name_len + extra_len


def mmap_npz(path) -> dict[str, np.ndarray]:
    """Read-only, zero-copy views of an uncompressed npz's arrays.

    ``np.savez`` stores members uncompressed (``ZIP_STORED``), so each
    ``.npy`` member sits contiguously in the file: this walks the zip
    directory, parses each member's npy header in place, and returns
    ``np.memmap`` views at the member's data offset — no bytes are
    deserialized, and every process mapping the same file shares one
    copy through the OS page cache.

    Parameters
    ----------
    path:
        An npz file written by ``np.savez`` (the snapshot payload
        format).  Members that cannot be mapped — compressed entries,
        unusual npy versions — fall back to a normal in-memory load of
        that member, so the result is complete for every numeric
        payload.  Object-dtype (pickled) members are refused: snapshot
        payloads never contain them, and unpickling would execute
        arbitrary bytes.

    Raises
    ------
    repro.exceptions.SnapshotError
        When *path* is missing, truncated, not a zip at all, or holds
        members only loadable via pickle (matching the eager loader's
        contract).
    """
    path = Path(path)
    try:
        f = open(path, "rb")
    except FileNotFoundError:
        raise SnapshotError(
            f"snapshot payload missing: {path} (partial copy or "
            f"interrupted save)"
        ) from None
    out: dict[str, np.ndarray] = {}
    fallback: list[str] = []
    try:
        return _mmap_members(path, f, out, fallback)
    except (zipfile.BadZipFile, EOFError) as exc:
        raise SnapshotError(
            f"snapshot payload unreadable: {path} (truncated or "
            f"corrupted: {exc})"
        ) from None
    finally:
        f.close()


def _mmap_members(path, f, out, fallback):
    """Map every member of the open npz *f* into *out* (helper of
    :func:`mmap_npz`; members that cannot be mapped collect in
    *fallback* and load eagerly)."""
    with zipfile.ZipFile(f) as zf:
        for info in zf.infolist():
            name = info.filename.removesuffix(".npy")
            offset = (
                _read_member_header(f, info)
                if info.compress_type == zipfile.ZIP_STORED
                else None
            )
            if offset is None:
                fallback.append(name)
                continue
            f.seek(offset)
            try:
                version = np.lib.format.read_magic(f)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
                else:
                    fallback.append(name)
                    continue
            except ValueError:
                fallback.append(name)
                continue
            if dtype.hasobject:
                fallback.append(name)
                continue
            out[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=f.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    if fallback:
        try:
            with np.load(path, allow_pickle=False) as npz:
                for name in fallback:
                    out[name] = npz[name]
        except ValueError as exc:
            # Object-dtype members need allow_pickle — refuse rather
            # than execute pickle bytes from a payload file.
            raise SnapshotError(
                f"snapshot payload {path} has members that cannot be "
                f"loaded safely: {exc}"
            ) from None
    return out


# ----------------------------------------------------------------------
# Shared-memory array packing
# ----------------------------------------------------------------------
def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def export_arrays(arrays: dict) -> tuple[shared_memory.SharedMemory, dict]:
    """Pack *arrays* into one new shared-memory segment.

    Every array is copied once into the segment at a 64-byte-aligned
    offset; the returned descriptor records the segment name plus each
    array's ``(offset, dtype, shape)`` so :func:`attach_arrays` in any
    process can rebuild zero-copy views.

    Parameters
    ----------
    arrays:
        ``{key: ndarray}``; arrays are flattened C-contiguous.

    Returns
    -------
    ``(segment, descriptor)`` — the caller owns the segment and must
    eventually ``close()`` and ``unlink()`` it (see
    :class:`PublishedGeneration`).
    """
    packed = {key: np.ascontiguousarray(value) for key, value in arrays.items()}
    specs: dict[str, dict] = {}
    offset = 0
    for key, value in packed.items():
        offset = _aligned(offset)
        specs[key] = {
            "offset": offset,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
        offset += value.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for key, value in packed.items():
        view = np.ndarray(
            value.shape,
            dtype=value.dtype,
            buffer=segment.buf,
            offset=specs[key]["offset"],
        )
        view[...] = value
        del view  # drop the buffer export before anyone can close()
    descriptor = {"kind": "shm", "segment": segment.name, "arrays": specs}
    return segment, descriptor


def attach_arrays(descriptor: dict, *, untrack: bool = False):
    """Open one source descriptor's arrays without copying.

    ``kind == "shm"`` attaches the named segment and wraps each array
    spec in a read-only ``np.ndarray`` view over the shared buffer;
    ``kind == "npz"`` memory-maps the named file via :func:`mmap_npz`.

    Parameters
    ----------
    descriptor:
        One entry of a generation descriptor's ``sources`` list.
    untrack:
        Python <= 3.12 registers a segment with the ``multiprocessing``
        resource tracker on EVERY open, not just on create (bpo-39959);
        a worker whose tracker is *not* shared with the publisher (the
        ``spawn`` start method) would therefore unlink — destroy —
        live segments when it exits.  Pass ``True`` from such workers
        to compensate the attach-side registration; leave ``False``
        when the tracker is inherited (``fork``), where the publisher's
        single registration is the correct one.  On Python >= 3.13 the
        attach is simply untracked and this flag is moot.

    Returns
    -------
    ``(resource, arrays)`` — *resource* is the object keeping the
    mapping alive (a ``SharedMemory`` handle, or ``None`` for mmaps,
    which numpy keeps open itself), *arrays* the ``{key: view}`` dict.

    Raises
    ------
    FileNotFoundError
        When a shared-memory segment has already been unlinked — the
        publisher retired this generation; attach the newer one.
    """
    if descriptor["kind"] == "npz":
        return None, mmap_npz(descriptor["file"])
    try:
        # Python >= 3.13: attaching never registers with the resource
        # tracker — only the creator owns the segment's lifetime.
        segment = shared_memory.SharedMemory(name=descriptor["segment"], track=False)
    except TypeError:
        segment = shared_memory.SharedMemory(name=descriptor["segment"])
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass  # tracker quirks must never break an attach
    arrays = {}
    for key, spec in descriptor["arrays"].items():
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=segment.buf,
            offset=spec["offset"],
        )
        view.flags.writeable = False
        arrays[key] = view
    return segment, arrays


# ----------------------------------------------------------------------
# CSR <-> flat arrays
# ----------------------------------------------------------------------
def _csr_to_arrays(prefix: str, matrix: sp.csr_matrix, arrays: dict) -> dict:
    """Record *matrix*'s CSR arrays under *prefix*; return its descriptor.

    Index arrays are normalized to the smallest dtype scipy would pick
    for them (int32 when the matrix fits), so the attach-side
    constructor adopts the shared buffers instead of silently casting —
    a cast is a per-process copy, exactly what this module exists to
    avoid.
    """
    matrix = matrix.tocsr()
    idx_dtype = (
        np.int32
        if matrix.nnz < 2**31 and max(matrix.shape) < 2**31
        else np.int64
    )
    arrays[f"{prefix}/data"] = np.asarray(matrix.data, dtype=np.float64)
    arrays[f"{prefix}/indices"] = matrix.indices.astype(idx_dtype, copy=False)
    arrays[f"{prefix}/indptr"] = matrix.indptr.astype(idx_dtype, copy=False)
    return {"shape": list(matrix.shape)}


def _csr_from_arrays(prefix: str, arrays: dict, shape) -> sp.csr_matrix:
    """A CSR matrix adopting the (possibly read-only) arrays at *prefix*.

    The matrices were canonical when exported, so the canonical-format
    flag is asserted rather than recomputed — attaching must stay O(1)
    in the matrix size.
    """
    matrix = sp.csr_matrix(
        (
            arrays[f"{prefix}/data"],
            arrays[f"{prefix}/indices"],
            arrays[f"{prefix}/indptr"],
        ),
        shape=tuple(shape),
        copy=False,
    )
    matrix.has_canonical_format = True
    return matrix


# ----------------------------------------------------------------------
# Generations
# ----------------------------------------------------------------------
class PublishedGeneration:
    """The publisher's handle on one generation it exported.

    Holds the shared-memory segment (when the payload is shm-backed)
    and the descriptor-file path, so the generation can be retired —
    segment unlinked, descriptor removed — once every worker has moved
    to a newer one.  :class:`~repro.serving.cluster.ClusterService`
    keeps these in a generation-stamped
    :class:`~repro.utils.cache.LRUCache` whose eviction hook calls
    :meth:`dispose`.
    """

    def __init__(self, generation: int, epoch: int, path: Path, segment):
        self.generation = int(generation)
        self.epoch = int(epoch)
        self.path = Path(path)
        self._segment = segment

    def dispose(self) -> None:
        """Unlink the segment and remove the descriptor file (idempotent).

        Workers still *attached* keep their mappings — POSIX shared
        memory lives until the last close — but no new attach can find
        the name, which is exactly the retirement contract.
        """
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"PublishedGeneration(generation={self.generation}, "
            f"epoch={self.epoch}, path={str(self.path)!r})"
        )


class AttachedGeneration:
    """A worker's live view of one published generation.

    Attributes
    ----------
    hin:
        The attached :class:`~repro.networks.hin.HIN`, built zero-copy
        over the generation's buffers at the published epoch.
    engine:
        ``hin.engine()`` with the published warm cache installed.
    generation / epoch:
        The generation counter and update epoch this state serves.
    payload_bytes:
        Total size of the attached buffers (segment sizes plus
        mmap-backed payload files).  These bytes are *shared* — mapped,
        not copied, by every attaching process — so they are the term
        the memory-ratio benchmarks (E18/E21) compare across serving
        topologies; per-process private memory is the RSS side of the
        report.
    """

    def __init__(
        self, generation: int, epoch: int, hin, engine, resources,
        payload_bytes: int = 0,
    ):
        self.generation = int(generation)
        self.epoch = int(epoch)
        self.hin = hin
        self.engine = engine
        self.payload_bytes = int(payload_bytes)
        self._resources = resources

    def close(self) -> None:
        """Release the attachment (idempotent).

        Drops the HIN/engine references (which hold the numpy views)
        and closes the underlying segment mappings.  A mapping whose
        buffers are still exported — e.g. an answer object alive in the
        caller — is left for the garbage collector plus OS teardown
        rather than invalidated out from under it.
        """
        self.hin = None
        self.engine = None
        resources, self._resources = self._resources, []
        for resource in resources:
            if resource is None:
                continue
            try:
                resource.close()
            except BufferError:
                # numpy views over the buffer are still alive somewhere;
                # the mapping dies with their last reference instead.
                pass

    def __repr__(self) -> str:
        return (
            f"AttachedGeneration(generation={self.generation}, "
            f"epoch={self.epoch}, hin={self.hin!r})"
        )


def _network_structure(hin) -> dict:
    """The JSON-able non-array half of a generation descriptor."""
    return {
        "node_types": list(hin.schema.node_types),
        "node_counts": {t: hin.node_count(t) for t in hin.schema.node_types},
        "relations": [
            {"name": r.name, "source": r.source, "target": r.target}
            for r in hin.schema.relations
        ],
        "names": {
            t: hin.names(t)
            for t in hin.schema.node_types
            if hin.names(t) is not None
        },
    }


def _write_descriptor(directory: Path, generation: int, descriptor: dict) -> Path:
    """Atomically write ``gen-<n>.json`` (workers must never read a torn
    descriptor; the rename is the publication point)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"gen-{int(generation)}.json"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(descriptor, indent=2), encoding="utf-8")
    os.replace(tmp, path)
    return path


def publish_generation(hin, engine, *, directory, generation: int) -> PublishedGeneration:
    """Export *hin* + *engine* state as shared-memory generation *generation*.

    Captures ``(epoch, entries)`` and the relation matrices under one
    engine read-lock hold (immutable values — the O(bytes) copy into
    the segment happens after release), packs every array into one
    segment, and atomically writes ``gen-<generation>.json`` into
    *directory*.  Workers polling the generation counter attach the
    complete state or nothing.

    Parameters
    ----------
    hin / engine:
        The network and its shared engine (the pair
        ``hin.apply()`` maintains).
    directory:
        Where descriptor files live; one directory per cluster.
    generation:
        Monotonic counter chosen by the publisher (distinct from the
        update epoch: a cluster may also republish at an unchanged
        epoch, e.g. after a prewarm).

    Returns
    -------
    A :class:`PublishedGeneration` owning the segment.
    """
    with engine.lock.read():
        epoch, entries = engine.export_state()
        structure = _network_structure(hin)
        captured = {
            rel["name"]: hin.relation_matrix(rel["name"])
            for rel in structure["relations"]
        }
    arrays: dict[str, np.ndarray] = {}
    for rel in structure["relations"]:
        name = rel["name"]
        rel.update(_csr_to_arrays(f"rel/{name}", captured[name], arrays))
    # One shared entry schema with snapshots (snapshot.py defines it):
    # generation_from_snapshot feeds a manifest's entry index straight
    # into attach_generation, so the two serializers must never drift.
    entry_index = _build_entry_index(entries, arrays, _csr_to_arrays)
    segment, source = export_arrays(arrays)
    descriptor = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "generation": int(generation),
        "epoch": int(epoch),
        **structure,
        "entries": entry_index,
        "sources": [source],
    }
    path = _write_descriptor(directory, generation, descriptor)
    return PublishedGeneration(generation, epoch, path, segment)


def generation_from_snapshot(path, *, directory, generation: int) -> PublishedGeneration:
    """Publish a generation whose payloads are a snapshot's npz files.

    The warm-start path: instead of deserializing the snapshot and
    re-exporting its bytes into a segment, the descriptor points
    straight at the snapshot's ``network-*.npz`` / ``cache-*.npz``
    payloads; every attaching process memory-maps them
    (:func:`mmap_npz`), so N workers warm up for the cost of paging the
    files in **once** through the shared OS page cache.

    Parameters
    ----------
    path:
        A snapshot directory written by
        :func:`repro.serving.save_snapshot`.
    directory / generation:
        As in :func:`publish_generation`.

    Raises
    ------
    repro.exceptions.SnapshotError
        When the manifest is missing or not a snapshot of the supported
        format.  Content hashes are *not* re-verified here — that would
        read every byte, defeating the zero-copy start; run
        :func:`repro.serving.load_snapshot` first when the files are
        untrusted.
    """
    snap = Path(path).resolve()
    manifest = _read_manifest(snap)
    relations = [
        {
            "name": r["name"],
            "source": r["source"],
            "target": r["target"],
            "shape": r["shape"],
            "prefix": f"rel/{r['name']}",
        }
        for r in manifest["relations"]
    ]
    descriptor = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "generation": int(generation),
        "epoch": int(manifest["epoch"]),
        "node_types": manifest["node_types"],
        "node_counts": manifest["node_counts"],
        "relations": relations,
        "names": manifest["names"],
        "entries": manifest["entries"],
        "sources": [
            {"kind": "npz", "file": str(snap / manifest["files"]["network"])},
            {"kind": "npz", "file": str(snap / manifest["files"]["cache"])},
        ],
    }
    gen_path = _write_descriptor(directory, generation, descriptor)
    return PublishedGeneration(generation, manifest["epoch"], gen_path, None)


def _read_generation(path) -> dict:
    path = Path(path)
    try:
        descriptor = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except ValueError as exc:
        raise SnapshotError(f"unreadable generation descriptor: {exc}") from None
    if descriptor.get("format") != _FORMAT:
        raise SnapshotError(
            f"not a {_FORMAT} descriptor: format={descriptor.get('format')!r}"
        )
    if descriptor.get("format_version") != _FORMAT_VERSION:
        raise SnapshotError(
            f"generation format version {descriptor.get('format_version')!r} "
            f"not supported (expected {_FORMAT_VERSION})"
        )
    return descriptor


def attach_generation(path_or_descriptor, *, untrack: bool = False) -> AttachedGeneration:
    """Attach one published generation as a live, warm, zero-copy HIN.

    Parameters
    ----------
    path_or_descriptor:
        A ``gen-<n>.json`` path or an already-parsed descriptor dict.
    untrack:
        Passed through to :func:`attach_arrays`; ``True`` from worker
        processes that do not share the publisher's resource tracker.

    Returns
    -------
    An :class:`AttachedGeneration` whose ``hin``/``engine`` serve the
    published epoch.  Matrices and cache entries are views over the
    generation's buffers — nothing was copied, and nothing here may
    write them (``HIN(validate=False)`` guarantees the construction
    path doesn't; the engine's maintenance paths *replace* matrices
    rather than mutate, so even a worker that applied its own updates
    would not corrupt peers).

    Raises
    ------
    FileNotFoundError
        When the descriptor or its shared-memory segment is already
        retired; the caller should re-read the latest generation
        counter and attach that one instead.
    repro.exceptions.SnapshotError
        When the descriptor is unreadable or of an unsupported format.
    """
    descriptor = (
        path_or_descriptor
        if isinstance(path_or_descriptor, dict)
        else _read_generation(path_or_descriptor)
    )
    resources = []
    arrays: dict[str, np.ndarray] = {}
    payload_bytes = 0
    try:
        for source in descriptor["sources"]:
            resource, chunk = attach_arrays(source, untrack=untrack)
            resources.append(resource)
            arrays.update(chunk)
            if source["kind"] == "npz":
                try:
                    payload_bytes += os.path.getsize(source["file"])
                except OSError:
                    pass
            elif resource is not None:
                payload_bytes += int(resource.size)
        schema = NetworkSchema(
            descriptor["node_types"],
            [
                (r["name"], r["source"], r["target"])
                for r in descriptor["relations"]
            ],
        )
        matrices = {
            r["name"]: _csr_from_arrays(
                r.get("prefix", f"rel/{r['name']}"), arrays, r["shape"]
            )
            for r in descriptor["relations"]
        }
        hin = HIN(
            schema,
            descriptor["node_counts"],
            matrices,
            node_names=descriptor["names"] or None,
            validate=False,
        )
        hin._version = int(descriptor["epoch"])
        entries = _restore_entries(descriptor["entries"], arrays, _csr_from_arrays)
        engine = hin.engine()
        engine.attach_state(int(descriptor["epoch"]), entries)
    except BaseException:
        for resource in resources:
            if resource is not None:
                try:
                    resource.close()
                except BufferError:
                    pass
        raise
    return AttachedGeneration(
        descriptor["generation"],
        descriptor["epoch"],
        hin,
        engine,
        resources,
        payload_bytes,
    )
