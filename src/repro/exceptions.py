"""Exception and warning hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends raised by
misuse of the Python API itself) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeError",
    "SchemaError",
    "MetaPathError",
    "UpdateError",
    "RelationNotFoundError",
    "TypeNotFoundError",
    "RelationalError",
    "TableNotFoundError",
    "ColumnNotFoundError",
    "ForeignKeyError",
    "CubeError",
    "DimensionError",
    "SnapshotError",
    "IngestError",
    "XmlSyntaxError",
    "TruncatedXmlError",
    "IngestEncodingError",
    "MalformedRecordError",
    "NotFittedError",
    "ConvergenceWarning",
    "DataWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Structural problem with a homogeneous or heterogeneous graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id or node name was not present in the graph.

    Inherits from :class:`KeyError` because lookup by key failed; code that
    treats graphs as mappings keeps working.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr()s its argument
        return Exception.__str__(self)


class EdgeError(GraphError):
    """An edge is malformed (bad endpoints, negative weight, ...)."""


class SchemaError(ReproError):
    """A network schema is inconsistent or an operation violates it."""


class UpdateError(GraphError):
    """An update batch is malformed or cannot be applied to the network."""


class MetaPathError(SchemaError):
    """A meta-path does not type-check against the network schema."""


class RelationNotFoundError(SchemaError, KeyError):
    """No relation with the requested name/endpoints exists in the schema."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class TypeNotFoundError(SchemaError, KeyError):
    """The requested node type is not part of the network."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class RelationalError(ReproError):
    """Problem with the miniature relational-database substrate."""


class TableNotFoundError(RelationalError, KeyError):
    """The requested table does not exist in the database."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class ColumnNotFoundError(RelationalError, KeyError):
    """The requested column does not exist in the table."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class ForeignKeyError(RelationalError):
    """A foreign-key declaration or value is invalid."""


class CubeError(ReproError):
    """Problem constructing or querying an information-network cube."""


class DimensionError(CubeError, KeyError):
    """The requested cube dimension or level does not exist."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class SnapshotError(ReproError):
    """A warm-cache snapshot is unreadable, incompatible, or stale.

    Raised when loading a snapshot whose manifest does not describe the
    target network — wrong schema, wrong update epoch, or relation
    content that drifted since the snapshot was taken.
    """


class IngestError(ReproError):
    """A raw-data ingest stream cannot be parsed or safely applied.

    Every failure of the streaming ingest layer (:mod:`repro.ingest`)
    derives from this class, so a loader loop can catch one type.  The
    contract: an :class:`IngestError` raised mid-stream never leaves a
    *partially applied* chunk behind — committed update batches stay
    committed, the pending chunk is discarded whole.
    """


class XmlSyntaxError(IngestError):
    """The XML byte stream is not well-formed (wraps the parser error)."""


class TruncatedXmlError(XmlSyntaxError):
    """The XML stream ended mid-document (connection drop, partial file)."""


class IngestEncodingError(IngestError):
    """The byte stream is not valid in its declared character encoding."""


class MalformedRecordError(IngestError):
    """A publication record violates the schema mapping (strict mode).

    Raised only under ``on_error="raise"``; the default policy skips the
    record and surfaces a per-reason counter in ``ingest_stats()``.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model method that requires ``fit()`` was called before fitting."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped at ``max_iter`` before reaching ``tol``."""


class DataWarning(UserWarning):
    """Input data looks suspicious (empty types, isolated partitions, ...)."""
