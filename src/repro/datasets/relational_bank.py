"""Multi-relational bank database with a planted cross-join class signal.

Substitutes the PKDD'99 financial (Loan) database used by CrossMine and
the CS-department database used by CrossClus.  The class label of a
client is decided by information that is *not* on the client table:

* risky clients hold accounts in risky districts (1 join away), and
* their loans are predominantly of a risky purpose (2 joins away),

so any single-table learner on ``client`` alone is blind to the signal —
exactly the property the cross-relational experiments (E10, E11) test.
A ``transaction`` table of pure noise is included as a distractor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.database import Database
from repro.relational.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["BankDataset", "make_relational_bank"]


@dataclass
class BankDataset:
    """The generated database plus planted client classes.

    Attributes
    ----------
    db:
        Database with tables ``client``, ``account``, ``district``,
        ``loan``, ``transaction`` and their foreign keys.  The client
        table carries the label in column ``risk`` (for training);
        ``labels`` is the same information as an array.
    labels:
        ``0`` = safe, ``1`` = risky, per client row.
    """

    db: Database
    labels: np.ndarray

    @property
    def n_clients(self) -> int:
        return len(self.db.table("client"))


def make_relational_bank(
    *,
    n_clients: int = 120,
    n_districts: int = 8,
    risky_fraction: float = 0.4,
    signal_strength: float = 0.9,
    loans_per_client: tuple[int, int] = (1, 3),
    transactions_per_account: int = 3,
    seed=None,
) -> BankDataset:
    """Generate the bank with a class signal 1–2 joins away from clients.

    ``signal_strength`` is the probability that the district/loan
    attributes actually follow the client's class (1.0 = noiseless).
    """
    check_positive(n_clients, "n_clients")
    check_positive(n_districts, "n_districts")
    check_probability(risky_fraction, "risky_fraction")
    check_probability(signal_strength, "signal_strength")
    if n_districts < 2:
        raise ValueError("need at least 2 districts")
    rng = ensure_rng(seed)

    labels = (rng.random(n_clients) < risky_fraction).astype(np.int64)

    # districts: half 'declining', half 'growing' economies
    district_rows = []
    for d in range(n_districts):
        economy = "declining" if d < n_districts // 2 else "growing"
        district_rows.append((d, f"district_{d}", economy))

    client_rows = []
    account_rows = []
    loan_rows = []
    txn_rows = []
    loan_id = 0
    txn_id = 0
    for c in range(n_clients):
        risky = bool(labels[c])
        client_rows.append(
            (c, f"client_{c}", ("male", "female")[int(rng.integers(0, 2))],
             ("safe", "risky")[labels[c]])
        )
        # account district follows the class with signal_strength
        if rng.random() < signal_strength:
            pool = (
                range(0, n_districts // 2)
                if risky
                else range(n_districts // 2, n_districts)
            )
        else:
            pool = range(n_districts)
        district = int(rng.choice(list(pool)))
        account_rows.append((1000 + c, c, district,
                             ("classic", "junior")[int(rng.integers(0, 2))]))

        n_loans = int(rng.integers(loans_per_client[0], loans_per_client[1] + 1))
        for _ in range(n_loans):
            if rng.random() < signal_strength:
                purpose = "consumer_debt" if risky else "mortgage"
            else:
                purpose = ("consumer_debt", "mortgage", "business")[
                    int(rng.integers(0, 3))
                ]
            status = (
                ("late", "default")[int(rng.integers(0, 2))]
                if risky and rng.random() < signal_strength
                else "paid"
            )
            loan_rows.append((loan_id, 1000 + c, purpose, status))
            loan_id += 1

        for _ in range(transactions_per_account):
            txn_rows.append(
                (txn_id, 1000 + c,
                 ("deposit", "withdrawal", "transfer")[int(rng.integers(0, 3))])
            )
            txn_id += 1

    db = Database("bank")
    db.add_table(
        Table("district", ["id", "name", "economy"], district_rows, primary_key="id")
    )
    db.add_table(
        Table("client", ["id", "name", "gender", "risk"], client_rows, primary_key="id")
    )
    db.add_table(
        Table(
            "account",
            ["id", "client_id", "district_id", "type"],
            account_rows,
            primary_key="id",
        )
    )
    db.add_table(
        Table("loan", ["id", "account_id", "purpose", "status"], loan_rows, primary_key="id")
    )
    db.add_table(
        Table("transaction", ["id", "account_id", "kind"], txn_rows, primary_key="id")
    )
    db.add_foreign_key("account", "client_id", "client", "id")
    db.add_foreign_key("account", "district_id", "district", "id")
    db.add_foreign_key("loan", "account_id", "account", "id")
    db.add_foreign_key("transaction", "account_id", "account", "id")
    return BankDataset(db=db, labels=labels)
