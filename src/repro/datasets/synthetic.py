"""Synthetic bi-typed networks with planted clusters (RankClus's workload).

Reproduces the shape of the EDBT'09 synthetic evaluation: K clusters of
target objects (conferences) and attribute objects (authors); every author
publishes a power-law-ish number of papers, mostly in conferences of their
own cluster, with a controllable cross-cluster leak.  Five named
configurations mirror the paper's Dataset1–5 sweep from well-separated to
heavily mixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["BiTypeNetwork", "make_bitype_network", "RANKCLUS_CONFIGS"]


@dataclass
class BiTypeNetwork:
    """A planted bi-typed network.

    Attributes
    ----------
    w_xy:
        ``(n_targets, n_attributes)`` link-count matrix.
    w_yy:
        ``(n_attributes, n_attributes)`` co-occurrence (co-author) matrix.
    target_labels, attribute_labels:
        Planted cluster ids.
    """

    w_xy: sp.csr_matrix
    w_yy: sp.csr_matrix
    target_labels: np.ndarray
    attribute_labels: np.ndarray

    @property
    def n_clusters(self) -> int:
        return int(self.target_labels.max()) + 1


#: Named configurations mirroring the RankClus paper's five synthetic
#: datasets, ordered from easiest (dense, separated) to hardest (sparse,
#: heavily mixed).  Keys: papers per author range, cross-cluster link
#: probability.  Use ``attributes_per_cluster≈30`` with these to land in
#: the regime where the methods actually separate (benchmark E1).
RANKCLUS_CONFIGS: dict[str, dict] = {
    "dense-separated": {"papers_range": (5, 15), "cross_prob": 0.10},
    "dense-mixed": {"papers_range": (3, 9), "cross_prob": 0.20},
    "medium": {"papers_range": (2, 6), "cross_prob": 0.30},
    "sparse-separated": {"papers_range": (1, 4), "cross_prob": 0.35},
    "sparse-mixed": {"papers_range": (1, 3), "cross_prob": 0.40},
}


def make_bitype_network(
    *,
    n_clusters: int = 3,
    targets_per_cluster: int = 10,
    attributes_per_cluster: int = 100,
    papers_range: tuple[int, int] = (5, 15),
    cross_prob: float = 0.15,
    coauthors_per_paper: int = 2,
    seed=None,
) -> BiTypeNetwork:
    """Generate a planted bi-typed (conference–author) network.

    Each author draws a paper count uniformly from ``papers_range``; each
    paper goes to a conference of the author's own cluster with
    probability ``1 - cross_prob`` (uniform within the cluster), otherwise
    to a uniform conference of another cluster.  Co-author links are added
    by pairing each paper's author with ``coauthors_per_paper - 1``
    same-cluster colleagues.
    """
    check_positive(n_clusters, "n_clusters")
    check_positive(targets_per_cluster, "targets_per_cluster")
    check_positive(attributes_per_cluster, "attributes_per_cluster")
    check_probability(cross_prob, "cross_prob")
    if papers_range[0] < 1 or papers_range[1] < papers_range[0]:
        raise ValueError(f"invalid papers_range {papers_range}")
    rng = ensure_rng(seed)

    n_x = n_clusters * targets_per_cluster
    n_y = n_clusters * attributes_per_cluster
    target_labels = np.repeat(np.arange(n_clusters), targets_per_cluster)
    attribute_labels = np.repeat(np.arange(n_clusters), attributes_per_cluster)

    rows, cols, coo_rows, coo_cols = [], [], [], []
    for author in range(n_y):
        cluster = attribute_labels[author]
        n_papers = int(rng.integers(papers_range[0], papers_range[1] + 1))
        for _ in range(n_papers):
            if rng.random() < cross_prob and n_clusters > 1:
                other = int(rng.integers(0, n_clusters - 1))
                if other >= cluster:
                    other += 1
                conf_cluster = other
            else:
                conf_cluster = cluster
            conf = conf_cluster * targets_per_cluster + int(
                rng.integers(0, targets_per_cluster)
            )
            rows.append(conf)
            cols.append(author)
            # co-authors from the same cluster
            for _ in range(coauthors_per_paper - 1):
                co = cluster * attributes_per_cluster + int(
                    rng.integers(0, attributes_per_cluster)
                )
                if co != author:
                    coo_rows.append(author)
                    coo_cols.append(co)
                    coo_rows.append(co)
                    coo_cols.append(author)
                    rows.append(conf)
                    cols.append(co)

    w_xy = sp.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_x, n_y)
    ).tocsr()
    w_xy.sum_duplicates()
    w_yy = sp.coo_matrix(
        (np.ones(len(coo_rows)), (coo_rows, coo_cols)), shape=(n_y, n_y)
    ).tocsr()
    w_yy.sum_duplicates()
    return BiTypeNetwork(w_xy, w_yy, target_labels, attribute_labels)
