"""Synthetic conflicting-claims corpus for truth discovery (experiment E7).

Substitutes TruthFinder's web-extraction corpora (book authors, flight
times): objects have one true value in a small domain; sources have
planted reliabilities and claim values accordingly; optional *copiers*
replicate a bad source's claims, reproducing the correlated-error regime
that breaks majority voting.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["FactDataset", "make_conflicting_facts"]


@dataclass
class FactDataset:
    """Claims plus planted ground truth.

    Attributes
    ----------
    claims:
        List of ``(source, object, value)`` triples.
    truth:
        ``{object: true value}``.
    reliability:
        ``{source: planted accuracy}``.
    """

    claims: list[tuple]
    truth: dict
    reliability: dict

    def accuracy_of(self, predictions: dict) -> float:
        """Fraction of objects whose predicted value matches the truth."""
        if not self.truth:
            return 0.0
        hits = sum(
            1 for obj, true_val in self.truth.items()
            if predictions.get(obj) == true_val
        )
        return hits / len(self.truth)


def make_conflicting_facts(
    *,
    n_objects: int = 100,
    n_good_sources: int = 6,
    n_bad_sources: int = 10,
    good_accuracy: float = 0.9,
    bad_accuracy: float = 0.3,
    domain_size: int = 5,
    claim_prob: float = 0.8,
    n_copiers: int = 0,
    seed=None,
) -> FactDataset:
    """Generate claims from good/bad sources (plus optional copiers).

    Each source claims on each object independently with ``claim_prob``;
    a claim is the true value with the source's accuracy, otherwise a
    uniformly wrong value.  Copiers replicate the claims of the first bad
    source verbatim — many agreeing-but-wrong voices, the failure mode
    that separates TruthFinder from voting.
    """
    check_positive(n_objects, "n_objects")
    check_positive(n_good_sources, "n_good_sources")
    check_positive(n_bad_sources, "n_bad_sources")
    check_probability(good_accuracy, "good_accuracy")
    check_probability(bad_accuracy, "bad_accuracy")
    check_probability(claim_prob, "claim_prob")
    if domain_size < 2:
        raise ValueError(f"domain_size must be >= 2, got {domain_size}")
    if n_copiers < 0:
        raise ValueError("n_copiers must be >= 0")
    rng = ensure_rng(seed)

    objects = [f"object_{i}" for i in range(n_objects)]
    truth = {obj: int(rng.integers(0, domain_size)) for obj in objects}

    sources: list[tuple[str, float]] = []
    for i in range(n_good_sources):
        sources.append((f"good_{i}", good_accuracy))
    for i in range(n_bad_sources):
        sources.append((f"bad_{i}", bad_accuracy))

    claims: list[tuple] = []
    first_bad_claims: dict = {}
    for name, acc in sources:
        for obj in objects:
            if rng.random() > claim_prob:
                continue
            if rng.random() < acc:
                value = truth[obj]
            else:
                wrong = int(rng.integers(0, domain_size - 1))
                if wrong >= truth[obj]:
                    wrong += 1
                value = wrong
            claims.append((name, obj, value))
            if name == "bad_0":
                first_bad_claims[obj] = value

    reliability = {name: acc for name, acc in sources}
    for i in range(n_copiers):
        name = f"copier_{i}"
        for obj, value in first_bad_claims.items():
            claims.append((name, obj, value))
        reliability[name] = bad_accuracy  # copiers inherit the bad profile

    return FactDataset(claims=claims, truth=truth, reliability=reliability)
