"""Synthetic Flickr network — the tutorial's second case study.

Photos are linked to users, tags and groups, with planted *interest
communities*: each photo has a topic; its owner mostly shares that
interest; tags mix topic-specific and generic vocabulary; groups are
topical.  This is the substrate for the tag-graph classification
experiment (E13) and for community analysis on the photo projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.networks.hin import HIN
from repro.networks.schema import NetworkSchema
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["FlickrNetwork", "make_flickr", "FLICKR_TOPICS"]

FLICKR_TOPICS = ["wildlife", "architecture", "portrait", "street"]


@dataclass
class FlickrNetwork:
    """Generated Flickr-style network with planted topics.

    Attributes
    ----------
    hin:
        Star-schema HIN centered on photos (photo–user, photo–tag,
        photo–group relations).
    photo_labels, user_labels, tag_labels, group_labels:
        Planted topic per object (generic tags get -1).
    """

    hin: HIN
    photo_labels: np.ndarray
    user_labels: np.ndarray
    tag_labels: np.ndarray
    group_labels: np.ndarray

    @property
    def n_photos(self) -> int:
        return self.hin.node_count("photo")


def make_flickr(
    *,
    photos_per_topic: int = 150,
    users_per_topic: int = 25,
    tags_per_topic: int = 30,
    generic_tags: int = 20,
    groups_per_topic: int = 3,
    tags_per_photo: tuple[int, int] = (3, 7),
    cross_topic_prob: float = 0.1,
    group_prob: float = 0.6,
    seed=None,
) -> FlickrNetwork:
    """Generate the photo–user–tag–group network.

    Each photo: one owner (mostly same-topic), several tags (mostly from
    its topic's vocabulary plus generics), and membership in 0–2 topical
    groups.  ``cross_topic_prob`` is the label-noise knob.
    """
    check_positive(photos_per_topic, "photos_per_topic")
    check_positive(users_per_topic, "users_per_topic")
    check_positive(tags_per_topic, "tags_per_topic")
    check_positive(groups_per_topic, "groups_per_topic")
    check_probability(cross_topic_prob, "cross_topic_prob")
    check_probability(group_prob, "group_prob")
    if generic_tags < 0:
        raise ValueError("generic_tags must be >= 0")
    rng = ensure_rng(seed)
    n_topics = len(FLICKR_TOPICS)

    n_photos = photos_per_topic * n_topics
    n_users = users_per_topic * n_topics
    n_tags = tags_per_topic * n_topics + generic_tags
    n_groups = groups_per_topic * n_topics

    photo_labels = np.repeat(np.arange(n_topics), photos_per_topic)
    user_labels = np.repeat(np.arange(n_topics), users_per_topic)
    tag_labels = np.concatenate(
        [
            np.repeat(np.arange(n_topics), tags_per_topic),
            -np.ones(generic_tags, dtype=np.int64),
        ]
    )
    group_labels = np.repeat(np.arange(n_topics), groups_per_topic)

    def foreign(topic: int) -> int:
        other = int(rng.integers(0, n_topics - 1))
        return other + 1 if other >= topic else other

    uploaded: list[tuple[int, int]] = []
    tagged: list[tuple[int, int]] = []
    in_group: list[tuple[int, int]] = []
    for p in range(n_photos):
        topic = int(photo_labels[p])
        owner_topic = foreign(topic) if rng.random() < cross_topic_prob else topic
        owner = owner_topic * users_per_topic + int(rng.integers(0, users_per_topic))
        uploaded.append((p, owner))

        n_t = int(rng.integers(tags_per_photo[0], tags_per_photo[1] + 1))
        chosen: set[int] = set()
        while len(chosen) < n_t:
            roll = rng.random()
            if generic_tags and roll < 0.3:
                tag = tags_per_topic * n_topics + int(rng.integers(0, generic_tags))
            else:
                tag_topic = (
                    foreign(topic) if rng.random() < cross_topic_prob else topic
                )
                tag = tag_topic * tags_per_topic + int(rng.integers(0, tags_per_topic))
            chosen.add(tag)
        tagged.extend((p, t) for t in chosen)

        if rng.random() < group_prob:
            n_g = 1 + int(rng.random() < 0.3)
            for _ in range(n_g):
                g_topic = foreign(topic) if rng.random() < cross_topic_prob else topic
                group = g_topic * groups_per_topic + int(
                    rng.integers(0, groups_per_topic)
                )
                in_group.append((p, group))

    schema = NetworkSchema(
        ["photo", "user", "tag", "group"],
        [
            ("uploaded_by", "photo", "user"),
            ("tagged_with", "photo", "tag"),
            ("posted_in", "photo", "group"),
        ],
    )
    hin = HIN.from_edges(
        schema,
        nodes={
            "photo": [f"photo_{i}" for i in range(n_photos)],
            "user": [f"user_{i}" for i in range(n_users)],
            "tag": [
                f"tag_{FLICKR_TOPICS[tag_labels[i]]}_{i}"
                if tag_labels[i] >= 0
                else f"tag_generic_{i}"
                for i in range(n_tags)
            ],
            "group": [f"group_{i}" for i in range(n_groups)],
        },
        edges={
            "uploaded_by": uploaded,
            "tagged_with": tagged,
            "posted_in": in_group,
        },
    )
    return FlickrNetwork(
        hin=hin,
        photo_labels=photo_labels,
        user_labels=user_labels,
        tag_labels=tag_labels,
        group_labels=group_labels,
    )
