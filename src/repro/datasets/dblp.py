"""Synthetic DBLP "four-area" dataset — the tutorial's flagship case study.

The real four-area DBLP subset (databases, data mining, information
retrieval, machine learning; ~20 venues, thousands of authors) is the
evaluation workload of RankClus, NetClus, PathSim and GNetMine.  This
generator plants the same structure synthetically:

* venues carry real conference names per area, with per-venue prestige;
* authors belong to one area, productivity is heavy-tailed, a small
  fraction of prolific authors also publish across areas;
* papers sit at the center of the star schema (author–paper–venue–term);
* terms mix an area-specific vocabulary with a shared stop-ish vocabulary.

Every object carries a planted area label, so accuracy/NMI of any
clustering or classification method is measurable, which is how the
original papers evaluate on the real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.networks.hin import HIN
from repro.networks.schema import NetworkSchema
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "DblpFourArea",
    "make_dblp_four_area",
    "dblp_schema",
    "empty_dblp_hin",
    "AREAS",
    "VENUES_BY_AREA",
]

AREAS = ["database", "data_mining", "info_retrieval", "machine_learning"]

VENUES_BY_AREA: dict[str, list[str]] = {
    "database": ["SIGMOD", "VLDB", "ICDE", "PODS", "EDBT"],
    "data_mining": ["KDD", "ICDM", "SDM", "PKDD", "PAKDD"],
    "info_retrieval": ["SIGIR", "CIKM", "ECIR", "WSDM", "TREC"],
    "machine_learning": ["ICML", "NIPS", "AAAI", "IJCAI", "ECML"],
}

#: Relative prestige inside each area (first venue is the flagship); used
#: as the venue-choice distribution, so flagship venues accumulate the
#: most papers — which is what authority ranking should recover.
_PRESTIGE = np.array([0.35, 0.25, 0.18, 0.12, 0.10])


def dblp_schema() -> NetworkSchema:
    """The canonical DBLP star schema shared by every DBLP build path.

    Both the synthetic four-area generator (:func:`make_dblp_four_area`)
    and the real streaming XML ingest
    (:class:`repro.ingest.StreamIngestor`) construct their networks from
    this one helper, so the meta-path DSL abbreviations (``"A-P-V-P-A"``,
    ``"P-T"``, ...) resolve to exactly the same types and relations no
    matter where the data came from — pinned by
    ``tests/ingest/test_schema_parity.py``.
    """
    return NetworkSchema(
        ["author", "paper", "venue", "term"],
        [
            ("writes", "author", "paper"),
            ("published_in", "paper", "venue"),
            ("mentions", "paper", "term"),
        ],
    )


def empty_dblp_hin() -> HIN:
    """An empty, *named* HIN over :func:`dblp_schema`.

    Every type starts at zero nodes with an (empty) name table, so
    :meth:`~repro.networks.hin.HIN.apply` batches can grow it by name —
    the starting state of a streaming ingest.
    """
    schema = dblp_schema()
    return HIN(
        schema,
        {t: 0 for t in schema.node_types},
        {},
        node_names={t: [] for t in schema.node_types},
    )


@dataclass
class DblpFourArea:
    """The generated four-area network plus its planted ground truth.

    Attributes
    ----------
    hin:
        Star-schema HIN (paper at the center; author/venue/term around).
    paper_labels, author_labels, venue_labels, term_labels:
        Planted area index (0..3) per object; shared terms get label -1.
    paper_years:
        Publication year per paper (for the OLAP time dimension).
    """

    hin: HIN
    paper_labels: np.ndarray
    author_labels: np.ndarray
    venue_labels: np.ndarray
    term_labels: np.ndarray
    paper_years: np.ndarray
    areas: list[str] = field(default_factory=lambda: list(AREAS))

    @property
    def n_papers(self) -> int:
        return self.hin.node_count("paper")


def make_dblp_four_area(
    *,
    authors_per_area: int = 100,
    papers_per_area: int = 300,
    terms_per_area: int = 60,
    shared_terms: int = 40,
    cross_area_prob: float = 0.08,
    authors_per_paper: tuple[int, int] = (1, 4),
    terms_per_paper: tuple[int, int] = (4, 8),
    years: tuple[int, int] = (1998, 2009),
    seed=None,
) -> DblpFourArea:
    """Generate the synthetic four-area DBLP network.

    ``cross_area_prob`` controls how often a paper recruits an author or a
    term from a foreign area — the knob that makes the clustering task
    harder (NetClus's accuracy sweep varies exactly this kind of mixing).
    """
    check_positive(authors_per_area, "authors_per_area")
    check_positive(papers_per_area, "papers_per_area")
    check_positive(terms_per_area, "terms_per_area")
    check_probability(cross_area_prob, "cross_area_prob")
    if shared_terms < 0:
        raise ValueError("shared_terms must be >= 0")
    rng = ensure_rng(seed)
    n_areas = len(AREAS)

    venue_names = [v for a in AREAS for v in VENUES_BY_AREA[a]]
    venue_labels = np.repeat(np.arange(n_areas), 5)

    n_authors = authors_per_area * n_areas
    author_labels = np.repeat(np.arange(n_areas), authors_per_area)
    author_names = [f"author_{AREAS[author_labels[i]][:2]}_{i}" for i in range(n_authors)]
    # Heavy-tailed productivity: Zipf-ish weights decide who writes papers.
    productivity = rng.zipf(2.0, size=n_authors).astype(np.float64)
    productivity = np.minimum(productivity, 50.0)

    n_terms = terms_per_area * n_areas + shared_terms
    term_labels = np.concatenate(
        [np.repeat(np.arange(n_areas), terms_per_area), -np.ones(shared_terms, dtype=np.int64)]
    )
    term_names = [
        f"term_{AREAS[term_labels[i]][:2]}_{i}" if term_labels[i] >= 0 else f"term_common_{i}"
        for i in range(n_terms)
    ]

    n_papers = papers_per_area * n_areas
    paper_labels = np.repeat(np.arange(n_areas), papers_per_area)
    paper_names = [f"paper_{i}" for i in range(n_papers)]
    paper_years = rng.integers(years[0], years[1] + 1, size=n_papers)

    writes: list[tuple[int, int]] = []
    published_in: list[tuple[int, int]] = []
    mentions: list[tuple[int, int]] = []

    def pick_author(area: int) -> int:
        if rng.random() < cross_area_prob:
            foreign = int(rng.integers(0, n_areas - 1))
            if foreign >= area:
                foreign += 1
            area = foreign
        lo = area * authors_per_area
        weights = productivity[lo : lo + authors_per_area]
        return lo + int(rng.choice(authors_per_area, p=weights / weights.sum()))

    def pick_term(area: int) -> int:
        if shared_terms and rng.random() < 0.35:
            return terms_per_area * n_areas + int(rng.integers(0, shared_terms))
        if rng.random() < cross_area_prob:
            foreign = int(rng.integers(0, n_areas - 1))
            if foreign >= area:
                foreign += 1
            area = foreign
        return area * terms_per_area + int(rng.integers(0, terms_per_area))

    for p in range(n_papers):
        area = int(paper_labels[p])
        venue = area * 5 + int(rng.choice(5, p=_PRESTIGE))
        published_in.append((p, venue))
        n_auth = int(rng.integers(authors_per_paper[0], authors_per_paper[1] + 1))
        chosen: set[int] = set()
        while len(chosen) < n_auth:
            chosen.add(pick_author(area))
        writes.extend((a, p) for a in chosen)
        n_t = int(rng.integers(terms_per_paper[0], terms_per_paper[1] + 1))
        terms_chosen: set[int] = set()
        while len(terms_chosen) < n_t:
            terms_chosen.add(pick_term(area))
        mentions.extend((p, t) for t in terms_chosen)

    schema = dblp_schema()
    hin = HIN.from_edges(
        schema,
        nodes={
            "author": author_names,
            "paper": paper_names,
            "venue": venue_names,
            "term": term_names,
        },
        edges={
            "writes": writes,
            "published_in": published_in,
            "mentions": mentions,
        },
    )
    return DblpFourArea(
        hin=hin,
        paper_labels=paper_labels,
        author_labels=author_labels,
        venue_labels=venue_labels,
        term_labels=term_labels,
        paper_years=paper_years,
    )
