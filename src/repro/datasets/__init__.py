"""Synthetic case-study datasets: DBLP four-area, Flickr, conflicting
facts (truth discovery), the relational bank DB, and RankClus's planted
bi-typed networks.  All seeded and laptop-scale."""

from repro.datasets.dblp import (
    AREAS,
    VENUES_BY_AREA,
    DblpFourArea,
    dblp_schema,
    empty_dblp_hin,
    make_dblp_four_area,
)
from repro.datasets.facts import FactDataset, make_conflicting_facts
from repro.datasets.flickr import FLICKR_TOPICS, FlickrNetwork, make_flickr
from repro.datasets.relational_bank import BankDataset, make_relational_bank
from repro.datasets.synthetic import (
    RANKCLUS_CONFIGS,
    BiTypeNetwork,
    make_bitype_network,
)

__all__ = [
    "FactDataset",
    "make_conflicting_facts",
    "FlickrNetwork",
    "make_flickr",
    "FLICKR_TOPICS",
    "BankDataset",
    "make_relational_bank",
    "BiTypeNetwork",
    "make_bitype_network",
    "RANKCLUS_CONFIGS",
    "DblpFourArea",
    "make_dblp_four_area",
    "dblp_schema",
    "empty_dblp_hin",
    "AREAS",
    "VENUES_BY_AREA",
]
