"""MetaPathEngine — shared materialization and top-k serving for meta-path queries.

Every flagship primitive of this library — PathSim similarity, the
rank-while-clustering loops of RankClus/NetClus, meta-path features for
classification — reduces to products of typed relation matrices along a
meta-path (*commuting matrices*).  Recomputing those products per query
is the dominant cost of a query-heavy workload, and it is pure waste:
the network changes far more slowly than the paths repeat.

The engine fixes this with four ideas:

1. **Canonical-path caching.**  Commuting matrices are materialized once
   into an LRU-bounded cache (:class:`repro.utils.cache.LRUCache`) keyed
   by the path's canonical step sequence
   (:meth:`~repro.networks.schema.MetaPath.canonical_key`), so every
   spelling of a path — and every *prefix* shared between paths — lands
   on one entry.  Materializing ``A-P-V-P-A`` after ``A-P-A`` reuses the
   cached ``A-P`` product instead of starting over.
2. **Symmetric decomposition.**  A symmetric path ``P = (P_l, P_l^-1)``
   has commuting matrix ``M = W W^T`` where ``W`` is the product of the
   first half only.  The engine stores ``W`` (much smaller than ``M``)
   and the diagonal of ``M`` (row-wise squared norms of ``W``), which is
   everything PathSim needs.
3. **Row-sliced top-k.**  A single-source query never builds the n x n
   matrix: one sparse row of ``W`` is pushed through ``W^T`` (or threaded
   through the step matrices for asymmetric paths), normalized, and the
   top-k selected with a partition (:func:`repro.engine.topk.top_k_indices`)
   instead of a full sort.  Batched queries slice a block of rows at once.
4. **Cost-based association planning.**  Chain products are evaluated
   in the association order a matrix-chain DP picks from per-relation
   statistics (:mod:`repro.engine.planner`), seeded from cached
   prefixes, suffixes, infixes and reversed-path (transpose) entries —
   association never changes the answer, only the cost.  The ``plan=``
   knob (engine-wide or per call) selects ``"auto"`` (default) or
   ``"left"`` (the historical strict left-to-right order).
5. **Incremental maintenance.**  When the network mutates
   (``hin.apply()``/``hin.mutate()``), the update receipt reaches
   :meth:`MetaPathEngine.apply_update`, which patches every cached
   product with a *delta product* (cost scales with the update, not the
   network) instead of invalidating the cache wholesale; see the method
   docstring and ``docs/ARCHITECTURE.md``.

Answers are exactly those of dense full materialization — same scores,
same tie-breaking — which the engine test-suite and benchmark E5 assert.

Use :meth:`repro.networks.hin.HIN.engine` to get the per-network shared
instance rather than constructing one per call site.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from dataclasses import replace as _dc_replace

from repro.engine.fused import (
    fused_block_scores,
    fused_partial_block,
    fused_row_scores,
)
from repro.engine.planner import ChainPlanner, PlanReport
from repro.exceptions import MetaPathError, NodeNotFoundError
from repro.networks.schema import MetaPath
from repro.networks.updates import AppliedUpdate, pad_csr
from repro.query.results import TopKResult
from repro.utils.cache import CacheInfo, LRUCache
from repro.utils.locks import RWLock
from repro.engine.topk import finalize_top_k, top_k_indices

__all__ = ["MetaPathEngine"]


def _reader(method):
    """Run *method* under the engine's read lock.

    Read-locked methods may nest freely (the lock is reentrant for
    readers), so every public query entry point carries this decorator
    and the internal helpers they call stay lock-free.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        """Read-locked pass-through to the wrapped method."""
        with self._rwlock.read():
            return method(self, *args, **kwargs)

    return wrapper


def _writer(method):
    """Run *method* under the engine's write lock (exclusive)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        """Write-locked pass-through to the wrapped method."""
        with self._rwlock.write():
            return method(self, *args, **kwargs)

    return wrapper


def _canonical(m: sp.csr_matrix) -> sp.csr_matrix:
    """Ensure canonical CSR form (sorted, duplicate-free) in place.

    Sparse products come back with unsorted column indices; every later
    binary op (the adds of incremental maintenance above all) silently
    re-canonicalizes per call unless it is done once here.
    """
    m.sum_duplicates()
    return m


class MetaPathEngine:
    """Caching query engine for meta-path primitives over one HIN.

    Parameters
    ----------
    hin:
        The :class:`~repro.networks.hin.HIN` to serve queries on.  When
        the network changes through ``hin.apply()`` / ``hin.mutate()``,
        the network's shared engine receives the update receipt and
        maintains its cached matrices *incrementally*
        (:meth:`apply_update`); a detached engine notices the epoch
        mismatch on its next query and falls back to a full cache clear.
    max_cached_matrices:
        LRU bound on the number of cached materializations (prefix
        products, symmetric decompositions, type-pair matrices).
    delta_rebuild_threshold:
        Incremental maintenance pays off while the update's per-relation
        delta is much sparser than the relation itself.  When
        ``delta.nnz / new.nnz`` exceeds this fraction for a relation, the
        engine evicts the cached products that traverse it (they rebuild
        lazily) instead of computing a delta denser than a rebuild.
    plan:
        Default association-order policy for chain products: ``"auto"``
        routes materializations through the cost-based planner
        (:mod:`repro.engine.planner`); ``"left"`` preserves the
        historical strict left-to-right order.  Either can be
        overridden per call via the ``plan=`` keyword on
        :meth:`commuting_matrix`, :meth:`pathsim_top_k` (and batch),
        and the connectivity entry points.  Answers are identical
        either way; only the evaluation cost differs.

    Example
    -------
    >>> engine = hin.engine()                                # doctest: +SKIP
    >>> engine.pathsim_top_k("venue-paper-author-paper-venue",
    ...                      "SIGMOD", k=5)                  # doctest: +SKIP
    [('VLDB', 0.98...), ('ICDE', 0.94...), ...]
    """

    def __init__(
        self,
        hin,
        *,
        max_cached_matrices: int = 64,
        delta_rebuild_threshold: float = 0.25,
        plan: str = "auto",
        mode: str = "auto",
    ):
        self.hin = hin
        self._cache = LRUCache(max_cached_matrices)
        self._rwlock = RWLock()
        self.delta_rebuild_threshold = float(delta_rebuild_threshold)
        if plan not in ("auto", "left"):
            raise ValueError(f"plan must be 'auto' or 'left', got {plan!r}")
        self.plan_mode = plan
        if mode not in ("auto", "fused", "materialize"):
            raise ValueError(
                f"mode must be 'auto', 'fused' or 'materialize', got {mode!r}"
            )
        self.topk_mode = mode
        # Auto-dispatch warms a path after this many fused answers: the
        # first few cold single-source queries thread rows (cheap), a
        # hot path then materializes once and serves from the cache.
        self.fused_auto_threshold = 4
        self._fused_uses: dict[tuple, int] = {}
        # Fused-vs-materialized dispatch counters (see planner_info()).
        self.kernel_counters = {"fused": 0, "materialize": 0}
        self._planner = ChainPlanner(self)
        # The network version this engine's cache describes.  Kept in
        # lock-step by apply_update(); _sync() handles engines that missed
        # an epoch (detached engines, or matrices replaced behind our back).
        self._epoch = getattr(hin, "version", 0)
        # Parse/validation memos, kept separate from the matrix cache so
        # hot query paths never evict a materialization.  Entries are tiny
        # and the set of distinct paths a workload uses is small, so plain
        # containers are the right choice.
        self._parsed: dict[str, MetaPath] = {}
        self._validated: set[tuple] = set()
        self._symmetric: dict[tuple, bool] = {}

    @property
    def epoch(self) -> int:
        """Network version the cached materializations answer for."""
        return self._epoch

    @property
    def lock(self) -> RWLock:
        """The engine's read–write lock (see :mod:`repro.utils.locks`).

        Queries hold the read side (any number run concurrently);
        ``hin.apply()`` commits the network mutation *and* the cache
        maintenance under the write side, so every query executes
        entirely at one update epoch.  External callers that read
        several engine answers as one consistent unit (e.g. snapshot
        serialization) can hold ``engine.lock.read()`` across the
        whole sequence — but must compute directly, never by awaiting
        a :class:`~repro.serving.QueryService` future from inside the
        block: the lock is writer-priority, so if a writer queues
        behind your read hold, the service worker's own read acquire
        blocks behind the writer and the future never resolves.
        """
        return self._rwlock

    def _sync(self) -> None:
        """Safety net for engines that missed an update receipt.

        The shared engine is maintained push-style by ``hin.apply()``;
        an engine constructed with kwargs (detached cache) or a network
        mutated more than once between its queries lands here instead:
        on epoch mismatch the whole cache is dropped (correct, just not
        incremental) and the generation counter advances.
        """
        version = getattr(self.hin, "version", 0)
        if version != self._epoch:
            self._cache.clear()
            self._cache.bump_generation()
            self._epoch = version

    # ------------------------------------------------------------------
    # Parsing / validation
    # ------------------------------------------------------------------
    def path(self, spec) -> MetaPath:
        """Resolve and validate *spec* against the network's schema.

        Parsing (string specs) and validation (``MetaPath`` objects) are
        both memoized — per-query re-checking is measurable overhead at
        serving rates.
        """
        if isinstance(spec, MetaPath):
            key = spec.canonical_key()
            if key not in self._validated:
                spec.validate(self.hin.schema)
                self._validated.add(key)
            return spec
        if isinstance(spec, str):
            mp = self._parsed.get(spec)
            if mp is None:
                mp = self.hin.meta_path(spec)
                self._parsed[spec] = mp
            return mp
        return self.hin.meta_path(spec)

    def symmetric_path(self, spec) -> MetaPath:
        """Like :meth:`path`, but requires a symmetric path (PathSim's domain)."""
        mp = self.path(spec)
        key = mp.canonical_key()
        symmetric = self._symmetric.get(key)
        if symmetric is None:
            symmetric = mp.is_symmetric()
            self._symmetric[key] = symmetric
        if not symmetric:
            raise MetaPathError(
                f"PathSim requires a symmetric meta-path, got {mp}"
            )
        return mp

    def _resolve(self, node_type: str, obj) -> int:
        if isinstance(obj, (int, np.integer)):
            idx = int(obj)
            n = self.hin.node_count(node_type)
            if not 0 <= idx < n:
                raise NodeNotFoundError(
                    f"{node_type!r} index {idx} out of range (n={n})"
                )
            return idx
        return self.hin.index_of(node_type, obj)

    # ------------------------------------------------------------------
    # Materialization (cached)
    # ------------------------------------------------------------------
    def _product(self, steps: tuple) -> sp.csr_matrix:
        """Cached left-to-right product of ``(relation, forward)`` steps.

        Recursing on the all-but-last prefix caches every prefix product,
        which is what lets ``A-P-A`` and ``A-P-V-P-A`` share their ``A-P``
        work automatically.
        """
        if len(steps) == 1:
            rel, forward = steps[0]
            return self.hin.oriented_matrix(rel, forward)
        key = ("product", tuple((rel.name, fwd) for rel, fwd in steps))
        cached = self._cache.get(key)
        if cached is None:
            rel, forward = steps[-1]
            last = self.hin.oriented_matrix(rel, forward)
            cached = _canonical(self._product(steps[:-1]).dot(last).tocsr())
            self._cache.put(key, cached)
        return cached

    def _plan_mode(self, plan) -> str:
        """Resolve a per-call ``plan=`` override against the engine default."""
        mode = self.plan_mode if plan is None else plan
        if mode not in ("auto", "left"):
            raise ValueError(f"plan must be 'auto' or 'left', got {mode!r}")
        return mode

    def _product_for(self, steps: tuple, mode: str) -> sp.csr_matrix:
        """Cached chain product over *steps* under association *mode*."""
        if mode == "left":
            return self._product(steps)
        return self._planner.materialize(steps)

    def _auto_choice(self, key: tuple, nq: int) -> tuple[str, bool]:
        """``(kernel, counted)`` auto-dispatch would pick for *nq* more
        queries on *key* right now — counter-free peeks only, so
        :meth:`explain` can call it without skewing the LRU."""
        if self._cache.peek(("pathsim", key)) is not None:
            return "materialize", False
        if self._fused_uses.get(key, 0) + nq > self.fused_auto_threshold:
            return "materialize", False
        return "fused", True

    def _topk_kernel(self, mode: str | None, mp: MetaPath, nq: int) -> str:
        """Resolve a per-call ``mode=`` override to the kernel to run.

        ``"fused"`` and ``"materialize"`` are forced; ``"auto"`` (or
        ``None`` → the engine's :attr:`topk_mode`) picks materialized
        when the path's PathSim entry is already cached, fused while the
        path is cold — until :attr:`fused_auto_threshold` answers have
        gone through fused, after which the path is deemed hot and auto
        materializes (one SpGEMM that every later query amortizes).
        Answers are bit-identical either way; only the cost differs.
        """
        self._sync()
        chosen = self.topk_mode if mode is None else mode
        if chosen not in ("auto", "fused", "materialize"):
            raise ValueError(
                f"mode must be 'auto', 'fused' or 'materialize', "
                f"got {chosen!r}"
            )
        if chosen == "auto":
            key = mp.canonical_key()
            chosen, counted = self._auto_choice(key, nq)
            if counted and nq:
                self._fused_uses[key] = self._fused_uses.get(key, 0) + nq
        self.kernel_counters[chosen] += 1
        return chosen

    @_reader
    def commuting_matrix(self, path, *, plan: str | None = None) -> sp.csr_matrix:
        """The commuting matrix ``M_P``, materialized once and cached.

        Symmetric paths are built as ``W W^T`` from the cached half
        product; asymmetric paths as the cached chain product in the
        association order *plan* selects (``"auto"``/``"left"``,
        default the engine's :attr:`plan_mode`).
        """
        self._sync()
        mode = self._plan_mode(plan)
        mp = self.path(path)
        steps = tuple(mp.steps())
        key = ("product", mp.canonical_key())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if mp.is_symmetric():
            w = self._product_for(steps[: len(steps) // 2], mode)
            m = _canonical(w.dot(w.T).tocsr())
        else:
            m = self._product_for(steps, mode)
        self._cache.put(key, m)
        return m

    @_reader
    def matrix_between(self, source: str, target: str) -> sp.csr_matrix:
        """Type-pair relation lookup, oriented ``source -> target``.

        Delegates to :meth:`~repro.networks.hin.HIN.matrix_between`, which
        is already cheap (schema lookup + the HIN's transpose cache), so
        these lookups never occupy LRU slots that commuting-matrix
        materializations need.
        """
        return self.hin.matrix_between(source, target)

    def _pathsim_parts(self, path, plan: str | None = None):
        """``(W, diag)`` for a symmetric path: the half product and the
        commuting matrix's diagonal (row-wise squared norms of ``W``) —
        all a PathSim query needs.

        Under ``plan="auto"`` the half product goes through the chain
        planner, which also fixes the historical silent miss for
        *reversed* spellings: a cached ``A-P-V`` product answers the
        ``V-P-A`` half as its transpose instead of recomputing."""
        self._sync()
        mode = self._plan_mode(plan)
        mp = self.symmetric_path(path)
        key = ("pathsim", mp.canonical_key())

        def compute():
            """Materialize the half product and its row-norm diagonal."""
            steps = tuple(mp.steps())
            w = self._product_for(steps[: len(steps) // 2], mode).tocsr()
            diag = np.asarray(w.multiply(w).sum(axis=1)).ravel()
            return w, diag

        return self._cache.get_or_compute(key, compute)

    @staticmethod
    def _dense_row(w: sp.csr_matrix, i: int) -> np.ndarray:
        """Row *i* of *w* as a dense vector, sliced straight off the CSR
        arrays (``getrow`` carries surprising per-call overhead)."""
        out = np.zeros(w.shape[1])
        start, end = w.indptr[i], w.indptr[i + 1]
        out[w.indices[start:end]] = w.data[start:end]
        return out

    @_reader
    def prewarm(self, paths: Sequence, *, plan: str | None = None) -> "MetaPathEngine":
        """Materialize *paths* up front (symmetric ones as PathSim parts)."""
        for spec in paths:
            mp = self.path(spec)
            if mp.is_symmetric():
                self._pathsim_parts(mp, plan)
            else:
                self.commuting_matrix(mp, plan=plan)
        return self

    # ------------------------------------------------------------------
    # PathSim serving
    # ------------------------------------------------------------------
    @_reader
    def pathsim(self, path, x, y) -> float:
        """PathSim score of one object pair (indices or names)."""
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp)
        i = self._resolve(mp.source_type, x)
        j = self._resolve(mp.source_type, y)
        denom = diag[i] + diag[j]
        if denom == 0:
            return 0.0
        m_ij = w.getrow(i).dot(w.getrow(j).T)[0, 0]
        return float(2.0 * m_ij / denom)

    @_reader
    def pathsim_row(self, path, query, *, plan: str | None = None) -> np.ndarray:
        """Dense PathSim scores from *query* to every peer.

        Exploits symmetry: ``M[i, :] = W (W[i, :])^T``, one CSR
        matrix-vector product — the full n x n matrix is never formed.
        """
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp, plan)
        i = self._resolve(mp.source_type, query)
        row = w.dot(self._dense_row(w, i))
        denom = diag[i] + diag
        return np.divide(
            2.0 * row,
            denom,
            out=np.zeros_like(row, dtype=np.float64),
            where=denom != 0,
        )

    @_reader
    def pathsim_partial(
        self, path, query, candidates, *, plan: str | None = None
    ) -> np.ndarray:
        """PathSim scores from *query* to just the *candidates* rows.

        Bit-identical to ``pathsim_row(path, query)[candidates]``: CSR
        row slicing preserves each row's entries and their order, so the
        sliced mat-vec runs the same per-row summation as the full one.
        The standing-query maintainer (:mod:`repro.watch`) uses this to
        re-score only the candidates an update's delta can touch —
        cost proportional to the touched rows' nnz, not the network.

        Parameters
        ----------
        path:
            A symmetric meta-path (any spelling).
        query:
            Query object — name or index of the path's source type.
        candidates:
            Row indices to score (need not be sorted or unique).
        plan:
            Association-order override for the materialization.
        """
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp, plan)
        i = self._resolve(mp.source_type, query)
        idx = np.asarray(candidates, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0)
        dots = w[idx].dot(self._dense_row(w, i))
        denom = diag[i] + diag[idx]
        return np.divide(
            2.0 * dots,
            denom,
            out=np.zeros_like(dots, dtype=np.float64),
            where=denom != 0,
        )

    @_reader
    def pathsim_partial_block(
        self, path, queries, candidates, *,
        plan: str | None = None, mode: str | None = None,
    ) -> np.ndarray:
        """Batched :meth:`pathsim_partial`: one ``(len(queries),
        len(candidates))`` score block.

        Each row is bit-identical to the corresponding
        ``pathsim_partial(path, query, candidates)`` call: the CSR
        matrix-times-dense-block kernel accumulates every output column
        in the same stored-entry order as the single-vector product.
        The standing-query maintainer uses this to re-score one
        update's touched candidates for every watch on the same path in
        a single sparse product.

        ``mode`` picks the kernel like :meth:`pathsim_top_k` does;
        ``"auto"`` keeps a cold path cold (threaded rows via
        :func:`~repro.engine.fused.fused_partial_block`) instead of
        forcing the half product into the cache for delta-sized work.
        """
        pmode = self._plan_mode(plan)
        mp = self.symmetric_path(path)
        kernel = self._topk_kernel(mode, mp, 0)
        if kernel == "fused":
            rows = [self._resolve(mp.source_type, q) for q in queries]
            return fused_partial_block(self, mp, rows, candidates, pmode)
        w, diag = self._pathsim_parts(mp, pmode)
        rows = np.array(
            [self._resolve(mp.source_type, q) for q in queries],
            dtype=np.int64,
        )
        idx = np.asarray(candidates, dtype=np.int64)
        if rows.size == 0 or idx.size == 0:
            return np.zeros((rows.size, idx.size))
        # F-ordered (len(rows), dim) densification transposes into a
        # C-contiguous (dim, len(rows)) operand with no second copy.
        block = w[rows].toarray(order="F").T
        dots = w[idx].dot(block)  # (len(idx), len(rows))
        denom = diag[idx][:, None] + diag[rows][None, :]
        scores = np.divide(
            2.0 * dots,
            denom,
            out=np.zeros_like(dots, dtype=np.float64),
            where=denom != 0,
        )
        return scores.T

    @_reader
    def pathsim_rows(self, path, queries, *, plan: str | None = None) -> np.ndarray:
        """Batched :meth:`pathsim_row`: one ``(len(queries), n)`` score
        block from a single sparse-times-dense block product."""
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp, plan)
        idx = np.array([self._resolve(mp.source_type, q) for q in queries])
        if idx.size == 0:
            return np.zeros((0, w.shape[0]))
        block = w.dot(np.asarray(w[idx].todense()).T).T  # (len(idx), n)
        denom = diag[idx][:, None] + diag[None, :]
        return np.divide(
            2.0 * block,
            denom,
            out=np.zeros_like(block, dtype=np.float64),
            where=denom != 0,
        )

    @_reader
    def pathsim_query_rows(self, path, queries, *, plan: str | None = None):
        """Scatter payload for shard-distributed PathSim top-k.

        Returns ``(indices, rows, diag)``: the resolved query indices,
        their rows of the half product ``W`` as one CSR block, and their
        PathSim diagonal entries.  This is everything a row-sharded
        worker (:mod:`repro.serving.shards`) cannot compute from its own
        slice — the query side of every dot product and denominator —
        extracted from the *parent-held* half product and diagonal, so
        per-shard partial scores merge bit-identically to
        :meth:`pathsim_top_k`.  The half product itself goes through the
        same planner-aware materialization (:meth:`_pathsim_parts`) as
        every single-process entry point.

        Parameters
        ----------
        path:
            A symmetric meta-path (any spelling).
        queries:
            Query objects — names or indices of the path's source type.
        plan:
            Association-order override for the materialization.
        """
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp, plan)
        idx = np.array(
            [self._resolve(mp.source_type, q) for q in queries],
            dtype=np.int64,
        )
        return idx, w[idx].tocsr(), diag[idx]

    @_reader
    def pathsim_matrix(self, path) -> np.ndarray:
        """Dense all-pairs PathSim matrix (full materialization — prefer
        the row/top-k entry points for serving)."""
        mp = self.symmetric_path(path)
        m = self.commuting_matrix(mp)
        diag = m.diagonal()
        denom = diag[:, None] + diag[None, :]
        dense = m.toarray()
        return np.divide(
            2.0 * dense, denom, out=np.zeros_like(dense), where=denom != 0
        )

    @_reader
    def pathsim_top_k(
        self, path, query, k: int, *, exclude_query: bool = True,
        plan: str | None = None, mode: str | None = None,
    ) -> TopKResult:
        """Top-*k* peers of *query* under *path*: a
        :class:`~repro.query.results.TopKResult` of ``(name, score)``
        pairs (a list subclass — iteration/indexing/equality unchanged).

        Results (including tie-breaking) are identical to ranking the full
        dense PathSim row with a stable sort; only the work differs.
        ``plan`` picks the association order for the materialization
        (the answer is the same either way; see :attr:`plan_mode`).
        ``mode`` picks the kernel: ``"materialize"`` serves from the
        cached symmetric decomposition, ``"fused"`` threads the query
        row through the relation chain without materializing it
        (:mod:`repro.engine.fused`), ``"auto"``/``None`` dispatches on
        cache state (see :meth:`_topk_kernel`).  The kernel that ran is
        reported as ``result.mode``; answers are bit-identical.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        pmode = self._plan_mode(plan)
        mp = self.symmetric_path(path)
        i = self._resolve(mp.source_type, query)
        kernel = self._topk_kernel(mode, mp, 1)
        if kernel == "fused":
            # The kernel prunes to exactly what _select consumes: the
            # top `need` positions (k plus the self-exclusion slot).
            scores = fused_row_scores(
                self, mp, i, pmode, need=k + 1 if exclude_query else k
            )
        else:
            scores = self.pathsim_row(mp, i, plan=pmode)
        return self._select(
            scores, mp, mp.source_type, i, k, exclude_query, "pathsim",
            plan=pmode, mode=kernel,
        )

    @_reader
    def pathsim_top_k_batch(
        self, path, queries, k: int, *, exclude_query: bool = True,
        plan: str | None = None, mode: str | None = None,
    ) -> list[TopKResult]:
        """:meth:`pathsim_top_k` for many queries with one block product
        (``mode="fused"`` runs the blocked fused kernel instead)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        pmode = self._plan_mode(plan)
        mp = self.symmetric_path(path)
        idx = [self._resolve(mp.source_type, q) for q in queries]
        kernel = self._topk_kernel(mode, mp, len(idx))
        if kernel == "fused":
            block = fused_block_scores(self, mp, idx, pmode)
        else:
            block = self.pathsim_rows(mp, idx, plan=pmode)
        return [
            self._select(
                block[row], mp, mp.source_type, i, k, exclude_query, "pathsim",
                plan=pmode, mode=kernel,
            )
            for row, i in enumerate(idx)
        ]

    def _select(
        self,
        scores: np.ndarray,
        mp: MetaPath,
        node_type: str,
        query: int,
        k: int,
        exclude: bool,
        measure: str,
        plan: str | None = None,
        mode: str | None = None,
    ) -> TopKResult:
        need = k + 1 if exclude else k
        order = top_k_indices(scores, min(need, scores.size))
        pairs = finalize_top_k(
            ((j, scores[j]) for j in order), k, query if exclude else None
        )
        return TopKResult(
            [(self.hin.name_of(node_type, j), score) for j, score in pairs],
            node_type=node_type,
            query=self.hin.name_of(mp.source_type, query),
            path=str(mp),
            measure=measure,
            network_version=getattr(self.hin, "version", None),
            plan=plan,
            mode=mode,
        )

    # ------------------------------------------------------------------
    # Connectivity (path count) serving — works for asymmetric paths too
    # ------------------------------------------------------------------
    @_reader
    def connectivity_row(self, path, query, *, plan: str | None = None) -> np.ndarray:
        """Path-instance counts from *query* to every target-type object.

        Slices the cached commuting matrix when available; otherwise
        threads one sparse row through the step matrices — the top-k
        cut pushed into the product: only the query's candidate row is
        ever computed, never the full ``M_P``.  Under ``plan="auto"``
        the threading chain reuses the longest cached subchain (forward
        or reversed spelling) at each position instead of raw steps.
        """
        self._sync()
        mode = self._plan_mode(plan)
        mp = self.path(path)
        i = self._resolve(mp.source_type, query)
        key = mp.canonical_key()
        cached = self._cache.get(("product", key))
        if cached is not None:
            return np.asarray(cached.getrow(i).todense()).ravel()
        # Single get, not contains-then-get: a concurrent reader's
        # materialization may LRU-evict the entry between the two calls.
        pathsim = self._cache.get(("pathsim", key))
        if pathsim is not None:
            # A PathSim-warmed symmetric path: M[i, :] = W (W[i, :])^T.
            w, _ = pathsim
            return w.dot(self._dense_row(w, i))
        if mode == "auto":
            mats = self._planner.row_chain(tuple(mp.steps()))
        else:
            mats = self.hin.step_matrices(mp)
        row = None
        for m in mats:
            row = m.getrow(i) if row is None else row.dot(m)
        return np.asarray(row.todense()).ravel()

    @_reader
    def top_k_connectivity(
        self, path, query, k: int, *, exclude_query: bool = False,
        plan: str | None = None,
    ) -> TopKResult:
        """Top-*k* target objects by path-instance count from *query*.

        ``exclude_query`` only makes sense for round-trip paths (source
        and target type coincide); it drops the query object itself.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        mode = self._plan_mode(plan)
        mp = self.path(path)
        i = self._resolve(mp.source_type, query)
        if exclude_query and mp.source_type != mp.target_type:
            raise MetaPathError(
                f"exclude_query needs a round-trip path, got "
                f"{mp.source_type!r} -> {mp.target_type!r}"
            )
        scores = self.connectivity_row(mp, i, plan=mode)
        return self._select(
            scores, mp, mp.target_type, i, k, exclude_query, "connectivity",
            plan=mode,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance under network updates
    # ------------------------------------------------------------------
    @_writer
    def apply_update(self, update: AppliedUpdate) -> dict:
        """Maintain every cached materialization under *update*.

        ``hin.apply()`` calls this on the network's shared engine with the
        update receipt.  For each cached product whose step tuple touches
        an updated relation, the new matrix is produced by a *delta
        product* instead of a rebuild:

        .. math::

            \\Delta M = \\sum_i W'_1 \\cdots W'_{i-1} \\,\\Delta W_i\\,
                        W_{i+1} \\cdots W_k

        — new matrices left of each delta, old matrices right of it, which
        telescopes exactly to ``M' - M``.  Each term threads a matrix with
        ``delta.nnz`` entries through the chain, so its cost scales with
        the *update*, not the network.  Relations whose delta is denser
        than :attr:`delta_rebuild_threshold` of the relation get their
        dependent entries evicted instead (rebuild lazily beats a dense
        delta); untouched entries are kept, padded with zero rows/columns
        when an endpoint type grew.

        For integer-weighted networks (link counts — the common case) the
        maintained matrices are bit-for-bit identical to rebuilt ones;
        with fractional weights they agree to floating-point roundoff.

        Returns a maintenance report: counts of ``updated`` / ``padded`` /
        ``evicted`` / ``kept`` entries.
        """
        if update.epoch != self._epoch + 1:
            # A receipt from the wrong base epoch: a *replayed* receipt
            # (epoch already applied) is a no-op, while a *skipped* epoch
            # means incremental maintenance would corrupt — _sync() drops
            # everything in that case, and the report reflects which
            # happened.
            stale = getattr(self.hin, "version", 0) != self._epoch
            dropped = len(self._cache) if stale else 0
            kept = 0 if stale else len(self._cache)
            self._sync()
            return {"updated": 0, "padded": 0, "evicted": dropped, "kept": kept}
        dense_rels = {
            name
            for name, d in update.deltas.items()
            if d.density_vs_rebuild > self.delta_rebuild_threshold
        }
        # Per-call scratch shared across entries: oriented old transposes,
        # memoized delta products (a pathsim half and its full product
        # compute each Δ once), and a pre-maintenance snapshot of cached
        # values so symmetric products can be patched from their *old*
        # half product regardless of processing order.
        scratch = {
            "old_transposes": {},
            "delta_products": {},
            "patched_products": {},
            "snapshot": {key: self._cache.peek(key) for key in self._cache.keys()},
        }
        report = {"updated": 0, "padded": 0, "evicted": 0, "kept": 0}
        for key in self._cache.keys():
            kind, full_steps = key
            steps = (
                full_steps[: len(full_steps) // 2]
                if kind == "pathsim"
                else full_steps
            )
            rels = {name for name, _ in steps}
            if rels & dense_rels:
                self._cache.pop(key)
                report["evicted"] += 1
                continue
            grown_src = self._step_from_type(steps[0]) in update.node_growth
            grown_dst = self._step_to_type(steps[-1]) in update.node_growth
            if not (rels & update.changed_relations):
                if grown_src or grown_dst:
                    self._pad_entry(key, kind, steps)
                    report["padded"] += 1
                else:
                    report["kept"] += 1
                continue
            self._maintain_entry(key, kind, steps, update, scratch)
            report["updated"] += 1
        self._epoch = update.epoch
        self._cache.bump_generation()
        return report

    def _step_from_type(self, step: tuple) -> str:
        name, forward = step
        rel = self.hin.schema.relation(name)
        return rel.source if forward else rel.target

    def _step_to_type(self, step: tuple) -> str:
        name, forward = step
        rel = self.hin.schema.relation(name)
        return rel.target if forward else rel.source

    def _entry_shape(self, steps: tuple) -> tuple[int, int]:
        """Post-update shape of the product over *steps*."""
        return (
            self.hin.node_count(self._step_from_type(steps[0])),
            self.hin.node_count(self._step_to_type(steps[-1])),
        )

    def _pad_entry(self, key: tuple, kind: str, steps: tuple) -> None:
        """Grow a value-unchanged entry to the post-update shape."""
        shape = self._entry_shape(steps)
        if kind == "pathsim":
            w, diag = self._cache.peek(key)
            w = pad_csr(w, shape)
            if shape[0] > diag.shape[0]:
                diag = np.concatenate([diag, np.zeros(shape[0] - diag.shape[0])])
            self._cache.replace(key, (w, diag))
        else:
            self._cache.replace(key, pad_csr(self._cache.peek(key), shape))

    @staticmethod
    def _patch(matrix: sp.csr_matrix, delta) -> sp.csr_matrix:
        """``matrix + delta`` in canonical CSR form.

        scipy's CSR addition already returns sorted, duplicate-free
        indices; explicit zeros (exact cancellations) can only appear
        where the delta is negative, so the O(nnz) prune runs only then.
        """
        if delta is None:
            return matrix
        delta = _canonical(delta.tocsr())
        out = (matrix + delta).tocsr()
        if delta.nnz and delta.data.min() < 0:
            out.eliminate_zeros()
        return out

    def _maintain_entry(
        self,
        key: tuple,
        kind: str,
        steps: tuple,
        update: AppliedUpdate,
        scratch: dict,
    ) -> None:
        """Rewrite one cached entry as ``pad(old) + delta``."""
        shape = self._entry_shape(steps)
        if kind == "pathsim":
            delta = self._memo_delta(steps, update, scratch)
            w, diag = self._cache.peek(key)
            w = pad_csr(w, shape)
            if shape[0] > diag.shape[0]:
                diag = np.concatenate([diag, np.zeros(shape[0] - diag.shape[0])])
            if delta is not None:
                delta = _canonical(delta.tocsr())
                # diag maintained incrementally on the delta's support:
                # ||w'_i||² = ||w_i||² + Σ_j (2 w_ij Δ_ij + Δ_ij²).
                correction = (
                    w.multiply(delta).sum(axis=1)
                    * 2.0
                    + delta.multiply(delta).sum(axis=1)
                )
                diag = diag + np.asarray(correction).ravel()
                w = self._patched_product(steps, w, delta, scratch)
            self._cache.replace(key, (w, diag))
        else:
            delta = self._symmetric_delta(steps, update, scratch)
            if delta is NotImplemented:
                delta = self._memo_delta(steps, update, scratch)
                m = self._patched_product(
                    steps, pad_csr(self._cache.peek(key), shape), delta, scratch
                )
            else:
                m = self._patch(pad_csr(self._cache.peek(key), shape), delta)
            self._cache.replace(key, m)

    def _patched_product(self, steps: tuple, padded, delta, scratch: dict):
        """Memoized ``padded + delta`` for plain product entries.

        A symmetric path's pathsim ``W`` and the cached half product hold
        the same matrix under two keys; patching it is the expensive part
        of maintenance for large products, so the result is shared within
        one :meth:`apply_update` pass.
        """
        memo = scratch["patched_products"]
        got = memo.get(steps)
        if got is None:
            got = self._patch(padded, delta)
            memo[steps] = got
        return got

    def _memo_delta(self, steps: tuple, update: AppliedUpdate, scratch: dict):
        """Per-apply_update memo over :meth:`_delta_product` — a pathsim
        half and the cached half product share one computation."""
        memo = scratch["delta_products"]
        if steps not in memo:
            memo[steps] = self._delta_product(
                steps, update, scratch["old_transposes"]
            )
        return memo[steps]

    def _symmetric_delta(self, steps: tuple, update: AppliedUpdate, scratch: dict):
        """``ΔM`` of a symmetric product from its *half* delta.

        For ``M = W Wᵀ`` (``W`` the half product), substituting
        ``W' = W + ΔW`` gives exactly

            ``ΔM = ΔW Wᵀ + W ΔWᵀ + ΔW ΔWᵀ``

        — two thin-times-full products instead of threading the delta
        through all ``k`` steps, whose backward half can reach most of the
        network even for a localized update.  Needs the *old* half
        product, read from the pre-maintenance snapshot (the pathsim
        entry's ``W`` or the cached half product itself); returns
        ``NotImplemented`` when the path is asymmetric or no old half is
        cached, so the caller falls back to the general delta product.
        """
        k = len(steps)
        if k < 2 or k % 2 or not self._steps_symmetric(steps):
            return NotImplemented
        half = steps[: k // 2]
        snapshot = scratch["snapshot"]
        cached = snapshot.get(("pathsim", steps))
        w_old = cached[0] if cached is not None else snapshot.get(("product", half))
        if w_old is None and len(half) == 1:
            name, forward = half[0]
            d = update.deltas.get(name)
            w_old = (
                self._old_oriented(half[0], update, scratch["old_transposes"])
                if d is not None
                else None
            )
        if w_old is None:
            return NotImplemented
        dw = self._memo_delta(half, update, scratch)
        if dw is None:
            return None
        dw = _canonical(dw.tocsr())
        w_old = pad_csr(w_old, dw.shape)
        left = _canonical((dw @ w_old.T).tocsr())
        return left + left.T.tocsr() + _canonical((dw @ dw.T).tocsr())

    @staticmethod
    def _steps_symmetric(steps: tuple) -> bool:
        return steps == tuple((name, not fwd) for name, fwd in reversed(steps))

    def _delta_product(
        self, steps: tuple, update: AppliedUpdate, old_transposes: dict
    ):
        """``Σ_i W'_1…W'_{i-1} ΔW_i W_{i+1}…W_k`` over *steps* (``None``
        when no step's relation changed).

        Every product in each term involves the sparse ``ΔW_i``, so the
        intermediate matrices stay thin (bounded by the delta's reach)
        and scipy's CSR multiply only pays for actual flops.
        """
        total = None
        for i, (name, forward) in enumerate(steps):
            d = update.deltas.get(name)
            if d is None or d.delta.nnz == 0:
                continue
            term = d.delta if forward else d.delta.T.tocsr()
            # Old suffix first: a delta that only references newly added
            # nodes hits their all-zero rows in the old matrices and the
            # whole term vanishes structurally — stop multiplying the
            # moment it does.
            for j in range(i + 1, len(steps)):
                term = term @ self._old_oriented(steps[j], update, old_transposes)
                if term.nnz == 0:
                    break
            if term.nnz == 0:
                continue
            for j in range(i - 1, -1, -1):
                name_j, forward_j = steps[j]
                term = self.hin.oriented_matrix(name_j, forward_j) @ term
                if term.nnz == 0:
                    break
            if term.nnz == 0:
                continue
            total = term if total is None else total + term
        return total

    def _old_oriented(
        self, step: tuple, update: AppliedUpdate, old_transposes: dict
    ) -> sp.csr_matrix:
        """Pre-update matrix of *step*, oriented along the traversal.

        Unchanged relations read (already padded) from the network;
        changed ones come from the receipt's ``old`` snapshot, with
        backward traversals transposed once per :meth:`apply_update` call.
        """
        name, forward = step
        d = update.deltas.get(name)
        if d is None:
            return self.hin.oriented_matrix(name, forward)
        if forward:
            return d.old
        cached = old_transposes.get(name)
        if cached is None:
            cached = d.old.T.tocsr()
            old_transposes[name] = cached
        return cached

    # ------------------------------------------------------------------
    # Warm-cache snapshots
    # ------------------------------------------------------------------
    @_reader
    def snapshot_entries(self) -> list[tuple]:
        """Stable ``(key, value)`` pairs of every cached materialization.

        Read under the engine's read lock so the list describes one
        epoch; values are peeked (recency and hit counters untouched).
        The serving layer's snapshot writer consumes this.

        The read lock excludes *writers*, not other readers: a
        concurrent query may still materialize (and thereby LRU-evict)
        entries between the key listing and the peek, so keys whose
        value has vanished are skipped rather than returned as ``None``.
        """
        self._sync()
        sentinel = object()
        entries = []
        for key in self._cache.keys():
            value = self._cache.peek(key, sentinel)
            if value is not sentinel:
                entries.append((key, value))
        return entries

    @_reader
    def export_state(self) -> tuple[int, list[tuple]]:
        """One consistent ``(epoch, entries)`` read of the warm cache.

        The multi-process publish path: everything a peer process needs
        to serve this engine's answers — the update epoch plus every
        cached materialization — captured under a single read-lock hold,
        so the pair can never describe two different epochs.  The values
        are the engine's *own* matrix objects (immutable by library
        convention); callers serialize or copy them into shared buffers
        after the lock releases.

        Returns
        -------
        ``(epoch, entries)`` where *entries* is the
        :meth:`snapshot_entries` list.
        """
        self._sync()
        return self._epoch, self.snapshot_entries()

    @_writer
    def attach_state(self, epoch: int, entries) -> int:
        """Adopt pre-materialized *entries* as this engine's cache at *epoch*.

        The inverse of :meth:`export_state`, used by a worker process
        attaching a published shared-memory generation: values typically
        wrap buffers the process does not own (read-only shared-memory
        or mmap views), which is safe because the engine never mutates
        cached matrices in place — maintenance *replaces* entries.

        Parameters
        ----------
        epoch:
            The update epoch *entries* describe.  The network this
            engine serves must already be at that epoch (the attach path
            constructs the HIN at the published version); a mismatch
            raises ``ValueError`` rather than installing a cache that
            every later answer would silently mistrust.
        entries:
            ``(key, value)`` pairs as produced by :meth:`export_state`.

        Returns
        -------
        The number of entries installed.
        """
        version = getattr(self.hin, "version", 0)
        if int(epoch) != version:
            raise ValueError(
                f"attach_state() epoch {epoch} does not match the "
                f"network's version {version}"
            )
        self._epoch = int(epoch)
        return self._install_entries(entries)

    @_writer
    def warm_entries(self, entries) -> int:
        """Install pre-materialized ``(key, value)`` pairs into the cache.

        The inverse of :meth:`snapshot_entries`, used when warming from
        a snapshot.  The caller (:func:`repro.serving.warm_from_snapshot`)
        is responsible for checking that the entries describe this
        network at its *current* epoch; installing entries from another
        epoch corrupts every later answer.  The LRU bound grows if
        needed so that every installed entry survives (a snapshot from
        a larger-cached engine must not be silently half-evicted).
        Returns the number installed.
        """
        self._sync()
        return self._install_entries(entries)

    def _install_entries(self, entries) -> int:
        """Install ``(key, value)`` pairs, growing the LRU bound so none
        of them is evicted by the install itself (caller holds the write
        lock)."""
        entries = list(entries)
        if len(entries) > self._cache.maxsize:
            self._cache.resize(len(entries))
        count = 0
        for key, value in entries:
            self._cache.put(key, value)
            count += 1
        return count

    def save_snapshot(self, path) -> dict:
        """Persist the network and this engine's warm cache to *path*.

        Delegates to :func:`repro.serving.save_snapshot`; see that
        function for the on-disk format (npz arrays + JSON manifest with
        the update epoch and schema hash).  Returns the manifest dict.
        """
        from repro.serving.snapshot import save_snapshot

        return save_snapshot(self, path)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters and occupancy of the matrix cache."""
        return self._cache.info()

    @_reader
    def explain(self, path, *, plan: str | None = None) -> PlanReport:
        """The association plan a materialization of *path* would use.

        Returns a :class:`~repro.engine.planner.PlanReport` — the chosen
        association string (cached seeds bracketed, ``~`` marking a
        transpose of a reversed-path entry), the cost model's flop
        estimates for the plan vs strict left-to-right evaluation, and
        the seeds it would consume.  Nothing is materialized or cached;
        only counter-free peeks touch the cache.

        Symmetric paths report the plan for the half product ``W`` (the
        engine builds ``M = W W^T`` from it); asymmetric paths report
        the full chain.
        """
        self._sync()
        mode = self._plan_mode(plan)
        mp = self.path(path)
        steps = tuple(mp.steps())
        symmetric = mp.is_symmetric()
        if symmetric:
            steps = steps[: len(steps) // 2]
        report = self._planner.report(
            steps, mode=mode, path=str(mp), symmetric=symmetric
        )
        if symmetric:
            # Which top-k kernel auto-dispatch would run right now
            # (peeks only; the report stays side-effect-free).
            kernel, _ = self._auto_choice(mp.canonical_key(), 0)
            report = _dc_replace(report, kernel=kernel)
        return report

    def planner_info(self) -> dict:
        """Planner counters: plans built, products planned, and seed
        reuse broken down by kind (prefix/suffix/infix/full, inverse),
        plus the engine's default :attr:`plan_mode` and the
        fused-vs-materialized top-k dispatch counters (``kernels``)."""
        info = dict(self._planner.counters)
        info["mode"] = self.plan_mode
        info["kernels"] = dict(self.kernel_counters)
        return info

    @_writer
    def clear_cache(self) -> None:
        """Drop every materialized matrix and start a new cache generation
        (the blunt alternative to :meth:`apply_update`)."""
        self._cache.clear()
        self._cache.bump_generation()
        self._epoch = getattr(self.hin, "version", 0)

    def __repr__(self) -> str:
        info = self._cache.info()
        return (
            f"MetaPathEngine({self.hin!r}, cached={info.currsize}/{info.maxsize}, "
            f"hit_rate={info.hit_rate:.2f})"
        )
