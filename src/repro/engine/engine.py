"""MetaPathEngine — shared materialization and top-k serving for meta-path queries.

Every flagship primitive of this library — PathSim similarity, the
rank-while-clustering loops of RankClus/NetClus, meta-path features for
classification — reduces to products of typed relation matrices along a
meta-path (*commuting matrices*).  Recomputing those products per query
is the dominant cost of a query-heavy workload, and it is pure waste:
the network changes rarely, the paths repeat constantly.

The engine fixes this with three ideas:

1. **Canonical-path caching.**  Commuting matrices are materialized once
   into an LRU-bounded cache (:class:`repro.utils.cache.LRUCache`) keyed
   by the path's canonical step sequence
   (:meth:`~repro.networks.schema.MetaPath.canonical_key`), so every
   spelling of a path — and every *prefix* shared between paths — lands
   on one entry.  Materializing ``A-P-V-P-A`` after ``A-P-A`` reuses the
   cached ``A-P`` product instead of starting over.
2. **Symmetric decomposition.**  A symmetric path ``P = (P_l, P_l^-1)``
   has commuting matrix ``M = W W^T`` where ``W`` is the product of the
   first half only.  The engine stores ``W`` (much smaller than ``M``)
   and the diagonal of ``M`` (row-wise squared norms of ``W``), which is
   everything PathSim needs.
3. **Row-sliced top-k.**  A single-source query never builds the n x n
   matrix: one sparse row of ``W`` is pushed through ``W^T`` (or threaded
   through the step matrices for asymmetric paths), normalized, and the
   top-k selected with a partition (:func:`repro.engine.topk.top_k_indices`)
   instead of a full sort.  Batched queries slice a block of rows at once.

Answers are exactly those of dense full materialization — same scores,
same tie-breaking — which the engine test-suite and benchmark E5 assert.

Use :meth:`repro.networks.hin.HIN.engine` to get the per-network shared
instance rather than constructing one per call site.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import MetaPathError, NodeNotFoundError
from repro.networks.schema import MetaPath
from repro.query.results import TopKResult
from repro.utils.cache import CacheInfo, LRUCache
from repro.engine.topk import top_k_indices

__all__ = ["MetaPathEngine"]


class MetaPathEngine:
    """Caching query engine for meta-path primitives over one HIN.

    Parameters
    ----------
    hin:
        The :class:`~repro.networks.hin.HIN` to serve queries on.  The
        engine assumes the network is immutable (as HINs are once built);
        call :meth:`clear_cache` if relation matrices are ever replaced.
    max_cached_matrices:
        LRU bound on the number of cached materializations (prefix
        products, symmetric decompositions, type-pair matrices).

    Example
    -------
    >>> engine = hin.engine()                                # doctest: +SKIP
    >>> engine.pathsim_top_k("venue-paper-author-paper-venue",
    ...                      "SIGMOD", k=5)                  # doctest: +SKIP
    [('VLDB', 0.98...), ('ICDE', 0.94...), ...]
    """

    def __init__(self, hin, *, max_cached_matrices: int = 64):
        self.hin = hin
        self._cache = LRUCache(max_cached_matrices)
        # Parse/validation memos, kept separate from the matrix cache so
        # hot query paths never evict a materialization.  Entries are tiny
        # and the set of distinct paths a workload uses is small, so plain
        # containers are the right choice.
        self._parsed: dict[str, MetaPath] = {}
        self._validated: set[tuple] = set()
        self._symmetric: dict[tuple, bool] = {}

    # ------------------------------------------------------------------
    # Parsing / validation
    # ------------------------------------------------------------------
    def path(self, spec) -> MetaPath:
        """Resolve and validate *spec* against the network's schema.

        Parsing (string specs) and validation (``MetaPath`` objects) are
        both memoized — per-query re-checking is measurable overhead at
        serving rates.
        """
        if isinstance(spec, MetaPath):
            key = spec.canonical_key()
            if key not in self._validated:
                spec.validate(self.hin.schema)
                self._validated.add(key)
            return spec
        if isinstance(spec, str):
            mp = self._parsed.get(spec)
            if mp is None:
                mp = self.hin.meta_path(spec)
                self._parsed[spec] = mp
            return mp
        return self.hin.meta_path(spec)

    def symmetric_path(self, spec) -> MetaPath:
        """Like :meth:`path`, but requires a symmetric path (PathSim's domain)."""
        mp = self.path(spec)
        key = mp.canonical_key()
        symmetric = self._symmetric.get(key)
        if symmetric is None:
            symmetric = mp.is_symmetric()
            self._symmetric[key] = symmetric
        if not symmetric:
            raise MetaPathError(
                f"PathSim requires a symmetric meta-path, got {mp}"
            )
        return mp

    def _resolve(self, node_type: str, obj) -> int:
        if isinstance(obj, (int, np.integer)):
            idx = int(obj)
            n = self.hin.node_count(node_type)
            if not 0 <= idx < n:
                raise NodeNotFoundError(
                    f"{node_type!r} index {idx} out of range (n={n})"
                )
            return idx
        return self.hin.index_of(node_type, obj)

    # ------------------------------------------------------------------
    # Materialization (cached)
    # ------------------------------------------------------------------
    def _product(self, steps: tuple) -> sp.csr_matrix:
        """Cached left-to-right product of ``(relation, forward)`` steps.

        Recursing on the all-but-last prefix caches every prefix product,
        which is what lets ``A-P-A`` and ``A-P-V-P-A`` share their ``A-P``
        work automatically.
        """
        if len(steps) == 1:
            rel, forward = steps[0]
            return self.hin.oriented_matrix(rel, forward)
        key = ("product", tuple((rel.name, fwd) for rel, fwd in steps))
        cached = self._cache.get(key)
        if cached is None:
            rel, forward = steps[-1]
            last = self.hin.oriented_matrix(rel, forward)
            cached = self._product(steps[:-1]).dot(last).tocsr()
            self._cache.put(key, cached)
        return cached

    def commuting_matrix(self, path) -> sp.csr_matrix:
        """The commuting matrix ``M_P``, materialized once and cached.

        Symmetric paths are built as ``W W^T`` from the cached half
        product; asymmetric paths as the cached left-to-right product.
        """
        mp = self.path(path)
        steps = tuple(mp.steps())
        key = ("product", mp.canonical_key())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if mp.is_symmetric():
            w = self._product(steps[: len(steps) // 2])
            m = w.dot(w.T).tocsr()
        else:
            m = self._product(steps)
        self._cache.put(key, m)
        return m

    def matrix_between(self, source: str, target: str) -> sp.csr_matrix:
        """Type-pair relation lookup, oriented ``source -> target``.

        Delegates to :meth:`~repro.networks.hin.HIN.matrix_between`, which
        is already cheap (schema lookup + the HIN's transpose cache), so
        these lookups never occupy LRU slots that commuting-matrix
        materializations need.
        """
        return self.hin.matrix_between(source, target)

    def _pathsim_parts(self, path):
        """``(W, diag)`` for a symmetric path: the half product and the
        commuting matrix's diagonal (row-wise squared norms of ``W``) —
        all a PathSim query needs."""
        mp = self.symmetric_path(path)
        key = ("pathsim", mp.canonical_key())

        def compute():
            steps = tuple(mp.steps())
            w = self._product(steps[: len(steps) // 2]).tocsr()
            diag = np.asarray(w.multiply(w).sum(axis=1)).ravel()
            return w, diag

        return self._cache.get_or_compute(key, compute)

    @staticmethod
    def _dense_row(w: sp.csr_matrix, i: int) -> np.ndarray:
        """Row *i* of *w* as a dense vector, sliced straight off the CSR
        arrays (``getrow`` carries surprising per-call overhead)."""
        out = np.zeros(w.shape[1])
        start, end = w.indptr[i], w.indptr[i + 1]
        out[w.indices[start:end]] = w.data[start:end]
        return out

    def prewarm(self, paths: Sequence) -> "MetaPathEngine":
        """Materialize *paths* up front (symmetric ones as PathSim parts)."""
        for spec in paths:
            mp = self.path(spec)
            if mp.is_symmetric():
                self._pathsim_parts(mp)
            else:
                self.commuting_matrix(mp)
        return self

    # ------------------------------------------------------------------
    # PathSim serving
    # ------------------------------------------------------------------
    def pathsim(self, path, x, y) -> float:
        """PathSim score of one object pair (indices or names)."""
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp)
        i = self._resolve(mp.source_type, x)
        j = self._resolve(mp.source_type, y)
        denom = diag[i] + diag[j]
        if denom == 0:
            return 0.0
        m_ij = w.getrow(i).dot(w.getrow(j).T)[0, 0]
        return float(2.0 * m_ij / denom)

    def pathsim_row(self, path, query) -> np.ndarray:
        """Dense PathSim scores from *query* to every peer.

        Exploits symmetry: ``M[i, :] = W (W[i, :])^T``, one CSR
        matrix-vector product — the full n x n matrix is never formed.
        """
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp)
        i = self._resolve(mp.source_type, query)
        row = w.dot(self._dense_row(w, i))
        denom = diag[i] + diag
        return np.divide(
            2.0 * row,
            denom,
            out=np.zeros_like(row, dtype=np.float64),
            where=denom != 0,
        )

    def pathsim_rows(self, path, queries) -> np.ndarray:
        """Batched :meth:`pathsim_row`: one ``(len(queries), n)`` score
        block from a single sparse-times-dense block product."""
        mp = self.symmetric_path(path)
        w, diag = self._pathsim_parts(mp)
        idx = np.array([self._resolve(mp.source_type, q) for q in queries])
        if idx.size == 0:
            return np.zeros((0, w.shape[0]))
        block = w.dot(np.asarray(w[idx].todense()).T).T  # (len(idx), n)
        denom = diag[idx][:, None] + diag[None, :]
        return np.divide(
            2.0 * block,
            denom,
            out=np.zeros_like(block, dtype=np.float64),
            where=denom != 0,
        )

    def pathsim_matrix(self, path) -> np.ndarray:
        """Dense all-pairs PathSim matrix (full materialization — prefer
        the row/top-k entry points for serving)."""
        mp = self.symmetric_path(path)
        m = self.commuting_matrix(mp)
        diag = m.diagonal()
        denom = diag[:, None] + diag[None, :]
        dense = m.toarray()
        return np.divide(
            2.0 * dense, denom, out=np.zeros_like(dense), where=denom != 0
        )

    def pathsim_top_k(
        self, path, query, k: int, *, exclude_query: bool = True
    ) -> TopKResult:
        """Top-*k* peers of *query* under *path*: a
        :class:`~repro.query.results.TopKResult` of ``(name, score)``
        pairs (a list subclass — iteration/indexing/equality unchanged).

        Results (including tie-breaking) are identical to ranking the full
        dense PathSim row with a stable sort; only the work differs.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        mp = self.symmetric_path(path)
        i = self._resolve(mp.source_type, query)
        scores = self.pathsim_row(mp, i)
        return self._select(scores, mp, mp.source_type, i, k, exclude_query, "pathsim")

    def pathsim_top_k_batch(
        self, path, queries, k: int, *, exclude_query: bool = True
    ) -> list[TopKResult]:
        """:meth:`pathsim_top_k` for many queries with one block product."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        mp = self.symmetric_path(path)
        idx = [self._resolve(mp.source_type, q) for q in queries]
        block = self.pathsim_rows(mp, idx)
        return [
            self._select(block[row], mp, mp.source_type, i, k, exclude_query, "pathsim")
            for row, i in enumerate(idx)
        ]

    def _select(
        self,
        scores: np.ndarray,
        mp: MetaPath,
        node_type: str,
        query: int,
        k: int,
        exclude: bool,
        measure: str,
    ) -> TopKResult:
        need = k + 1 if exclude else k
        order = top_k_indices(scores, min(need, scores.size))
        out = [
            (self.hin.name_of(node_type, int(j)), float(scores[j]))
            for j in order
            if not (exclude and j == query)
        ]
        return TopKResult(
            out[:k],
            node_type=node_type,
            query=self.hin.name_of(mp.source_type, query),
            path=str(mp),
            measure=measure,
        )

    # ------------------------------------------------------------------
    # Connectivity (path count) serving — works for asymmetric paths too
    # ------------------------------------------------------------------
    def connectivity_row(self, path, query) -> np.ndarray:
        """Path-instance counts from *query* to every target-type object.

        Slices the cached commuting matrix when available; otherwise
        threads one sparse row through the step matrices, which costs a
        vector-matrix product per step instead of materializing ``M_P``.
        """
        mp = self.path(path)
        i = self._resolve(mp.source_type, query)
        key = mp.canonical_key()
        cached = self._cache.get(("product", key))
        if cached is not None:
            return np.asarray(cached.getrow(i).todense()).ravel()
        if ("pathsim", key) in self._cache:
            # A PathSim-warmed symmetric path: M[i, :] = W (W[i, :])^T.
            w, _ = self._cache.get(("pathsim", key))
            return w.dot(self._dense_row(w, i))
        row = None
        for m in self.hin.step_matrices(mp):
            row = m.getrow(i) if row is None else row.dot(m)
        return np.asarray(row.todense()).ravel()

    def top_k_connectivity(
        self, path, query, k: int, *, exclude_query: bool = False
    ) -> TopKResult:
        """Top-*k* target objects by path-instance count from *query*.

        ``exclude_query`` only makes sense for round-trip paths (source
        and target type coincide); it drops the query object itself.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        mp = self.path(path)
        i = self._resolve(mp.source_type, query)
        if exclude_query and mp.source_type != mp.target_type:
            raise MetaPathError(
                f"exclude_query needs a round-trip path, got "
                f"{mp.source_type!r} -> {mp.target_type!r}"
            )
        scores = self.connectivity_row(mp, i)
        return self._select(
            scores, mp, mp.target_type, i, k, exclude_query, "connectivity"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters and occupancy of the matrix cache."""
        return self._cache.info()

    def clear_cache(self) -> None:
        """Drop every materialized matrix (e.g. after mutating the HIN)."""
        self._cache.clear()

    def __repr__(self) -> str:
        info = self._cache.info()
        return (
            f"MetaPathEngine({self.hin!r}, cached={info.currsize}/{info.maxsize}, "
            f"hit_rate={info.hit_rate:.2f})"
        )
