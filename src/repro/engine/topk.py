"""Top-k selection over score vectors without full sorts.

Serving top-k similarity queries is the hot path of the engine: a query
produces one dense score row of length *n*, of which only the *k* best
matter.  A full ``argsort`` costs ``O(n log n)``; ``np.partition`` finds
the k-th largest value in ``O(n)`` and only the (usually tiny) candidate
set above it gets sorted.

The selection is *exactly* equivalent to
``np.argsort(-scores, kind="stable")[:k]`` — ties are broken by ascending
index — so engine answers are bit-identical to the naive dense baseline,
which the engine tests and benchmark E5 assert.

The same order is what makes *distributed* selection exact: when a score
vector is partitioned row-wise across shards (:mod:`repro.serving.shards`),
each shard's :func:`shard_top_k` over its slice and a :func:`merge_top_k`
of the partial lists reproduce the single-process selection bit for bit —
any global top-k element ranks at least as high within its own shard, so
it survives the per-shard cut, and the merge re-sorts the union under the
identical ``(-score, index)`` key.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "shard_top_k", "merge_top_k", "finalize_top_k"]


def top_k_indices(scores, k: int) -> np.ndarray:
    """Indices of the *k* largest entries of *scores*, best first.

    Ordering matches ``np.argsort(-scores, kind="stable")[:k]`` exactly:
    descending score, ties broken by ascending index.  ``k`` larger than
    the vector returns every index.

    Parameters
    ----------
    scores:
        1-D array-like of comparable scores.
    k:
        How many indices to return (``0`` gives an empty array).
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    n = scores.size
    if k == 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(-scores, kind="stable").astype(np.int64)
    # Value of the k-th largest entry; every index scoring >= it is a
    # candidate (ties at the boundary are all kept so the stable sort can
    # break them by index, matching the full-argsort order).
    kth = np.partition(scores, n - k)[n - k]
    candidates = np.flatnonzero(scores >= kth)
    candidates = candidates[np.argsort(-scores[candidates], kind="stable")]
    return candidates[:k].astype(np.int64)


def shard_top_k(scores, k: int, offset: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """One shard's partial top-k: ``(global_indices, scores)``, best first.

    *scores* is the shard's contiguous slice ``[offset, offset + len)`` of
    a global score vector; the returned indices are global (local index
    plus *offset*), ordered by the same ``(-score, global index)`` key as
    :func:`top_k_indices` — offsetting preserves it because the slice is
    contiguous.  A shard holding fewer than *k* rows returns everything
    it has; an empty shard returns two empty arrays.

    Parameters
    ----------
    scores:
        The shard's 1-D score slice.
    k:
        How many candidates this shard must surface.  For an exact merge
        the caller passes the *global* ``k`` (plus one when the query row
        itself may be excluded later): every global top-k element ranks
        at least as high inside its own shard, so the per-shard cut can
        never drop one.
    offset:
        Global index of the shard's first row.
    """
    local = top_k_indices(scores, k)
    return local + int(offset), np.asarray(scores)[local]


def merge_top_k(parts, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exact, tie-stable k-way merge of per-shard partial top-k lists.

    Parameters
    ----------
    parts:
        Iterable of ``(global_indices, scores)`` pairs as produced by
        :func:`shard_top_k` over disjoint row ranges.  Empty parts (and
        an empty iterable) are fine.
    k:
        How many global winners to keep.

    Returns
    -------
    ``(indices, scores)`` ordered exactly like
    ``top_k_indices(full_scores, k)`` over the concatenated global score
    vector — descending score, ties broken by ascending global index —
    provided every part surfaced its own top *k* (the union then contains
    every global winner, and ``np.lexsort`` re-establishes the full
    stable order over it).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    parts = [
        (np.asarray(idx, dtype=np.int64), np.asarray(sc, dtype=np.float64))
        for idx, sc in parts
    ]
    if not parts:
        return np.empty(0, dtype=np.int64), np.empty(0)
    indices = np.concatenate([idx for idx, _ in parts])
    scores = np.concatenate([sc for _, sc in parts])
    # lexsort sorts by the LAST key first: primary -score, then index —
    # the engine's stable tie-break order.
    order = np.lexsort((indices, -scores))[:k]
    return indices[order], scores[order]


def finalize_top_k(ranked, k: int, exclude_index: int | None = None) -> list:
    """Shared tail of every top-k selection: self-exclusion + truncation.

    *ranked* is an iterable of ``(index, score)`` pairs already in final
    order (descending score, ties by ascending index) that surfaced at
    least ``k + 1`` entries when *exclude_index* is set (so dropping it
    can never leave the answer short).  Returns at most *k*
    ``(int, float)`` pairs.

    The engine's ``_select``, the sharded scatter/merge, and the fused
    kernel all finish through this one function, so the result shape —
    including the empty answer when every surfaced peer is excluded —
    cannot drift between the solo, batch, fused, and distributed paths.
    """
    if k <= 0:
        return []
    out = []
    for j, score in ranked:
        j = int(j)
        if exclude_index is not None and j == exclude_index:
            continue
        out.append((j, float(score)))
        if len(out) == k:
            break
    return out
