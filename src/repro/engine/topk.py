"""Top-k selection over score vectors without full sorts.

Serving top-k similarity queries is the hot path of the engine: a query
produces one dense score row of length *n*, of which only the *k* best
matter.  A full ``argsort`` costs ``O(n log n)``; ``np.partition`` finds
the k-th largest value in ``O(n)`` and only the (usually tiny) candidate
set above it gets sorted.

The selection is *exactly* equivalent to
``np.argsort(-scores, kind="stable")[:k]`` — ties are broken by ascending
index — so engine answers are bit-identical to the naive dense baseline,
which the engine tests and benchmark E5 assert.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices"]


def top_k_indices(scores, k: int) -> np.ndarray:
    """Indices of the *k* largest entries of *scores*, best first.

    Ordering matches ``np.argsort(-scores, kind="stable")[:k]`` exactly:
    descending score, ties broken by ascending index.  ``k`` larger than
    the vector returns every index.

    Parameters
    ----------
    scores:
        1-D array-like of comparable scores.
    k:
        How many indices to return (``0`` gives an empty array).
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    n = scores.size
    if k == 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(-scores, kind="stable").astype(np.int64)
    # Value of the k-th largest entry; every index scoring >= it is a
    # candidate (ties at the boundary are all kept so the stable sort can
    # break them by index, matching the full-argsort order).
    kth = np.partition(scores, n - k)[n - k]
    candidates = np.flatnonzero(scores >= kth)
    candidates = candidates[np.argsort(-scores[candidates], kind="stable")]
    return candidates[:k].astype(np.int64)
