"""Cost-based association planning for meta-path chain products.

The engine's original evaluator multiplies a chain ``W_1 · W_2 · … · W_k``
strictly left to right.  Association order does not change the answer
(matrix multiplication is associative; for the integer link counts this
library stores, even the float64 results are bit-identical) — but it
dominates the *cost* of long asymmetric paths.  On a bibliographic
network, ``A-P-V-P-A-P-T`` evaluated left to right materializes dense
author x paper intermediates twice, while routing the product through
the tiny venue type (``(A·V) · (V·T)``) keeps every intermediate no
wider than the venue count.

:class:`ChainPlanner` picks that order with the classic matrix-chain
DP, costed from the per-relation statistics the network maintains
incrementally (:meth:`repro.networks.hin.HIN.relation_stats`):

* ``flops(A·B) ≈ nnz(A) · nnz(B) / rows(B)`` — each stored entry of
  ``A`` meets the average row of ``B``;
* ``nnz(A·B)`` is the collision-discounted estimate
  ``rows·cols · (1 - exp(-flops / (rows·cols)))``, which saturates at
  the dense bound for fan-out-heavy products.

The planner also *seeds* from the cache: every contiguous subchain is
probed against the engine's canonical ``("product", steps)`` keys — and
against the **inverse** spelling, because a cached product for steps
``S`` answers ``reversed(S)`` exactly via one transpose
(``(W_1 … W_k)^T = W_k^T … W_1^T`` and each step flips direction).
That turns the prefix-only reuse of left-to-right evaluation into
prefix, suffix, infix, and reversed-path reuse.  Seeds are probed with
counter-free peeks at plan time and consumed with ordinary ``get``\\ s
at execution time, so an entry evicted between the two is simply
recomputed from the recorded split — a plan can go stale, never wrong.

Execution caches every interval it materializes under the engine's
normal ``("product", steps)`` keys, so planner-created entries are
maintained by :meth:`~repro.engine.engine.MetaPathEngine.apply_update`,
exported by ``export_state`` and serialized into snapshots exactly like
left-to-right prefixes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ChainPlanner", "ChainPlan", "PlanReport"]


def _canonical(m):
    """Canonical CSR (sorted, duplicate-free) in place — planner-local
    twin of the engine's helper (importing it would be circular)."""
    m.sum_duplicates()
    return m


def _inverse_steps(names: tuple) -> tuple:
    """The canonical key of the reversed path: reversed order, flipped
    directions.  ``product(inverse) == product(names)^T``."""
    return tuple((name, not forward) for name, forward in reversed(names))


def _flops(a: tuple, b: tuple) -> float:
    """Estimated scalar multiplies of ``A·B`` from (rows, cols, nnz)."""
    za, zb = a[2], b[2]
    if za == 0 or zb == 0:
        return 0.0
    return za * (zb / max(b[0], 1))


def _combine(a: tuple, b: tuple) -> tuple:
    """Estimated (rows, cols, nnz) of ``A·B`` with collision discount."""
    rows, cols = a[0], b[1]
    work = _flops(a, b)
    cells = rows * cols
    if cells <= 0 or work == 0.0:
        return (rows, cols, 0)
    est = cells * (1.0 - math.exp(-work / cells))
    return (rows, cols, min(work, max(est, 1.0)))


@dataclass(frozen=True)
class _Seed:
    """A cached product usable for the span ``steps[i:j]``."""

    span: tuple
    inverse: bool
    shape: tuple
    nnz: int


@dataclass(frozen=True)
class PlanReport:
    """Picklable summary of one chain plan (see ``engine.explain()``).

    ``est_flops``/``left_flops`` are the cost model's estimates for the
    chosen association and for strict left-to-right evaluation of the
    same chain; ``seeds`` describes the cached entries the plan reuses.
    """

    path: str
    mode: str
    symmetric: bool
    association: str
    est_flops: float
    left_flops: float
    seeds: tuple
    # Which top-k kernel auto-dispatch would run for this path right now
    # ("fused"/"materialize"; None for asymmetric paths, which have no
    # PathSim kernel choice).  Filled in by engine.explain().
    kernel: str | None = None

    @property
    def estimated_speedup(self) -> float:
        """Left-to-right cost over planned cost (>= 1 when planning helps)."""
        return self.left_flops / max(self.est_flops, 1.0)

    def to_dict(self) -> dict:
        """Plain-JSON view (benchmark artifacts, result metadata)."""
        return {
            "path": self.path,
            "mode": self.mode,
            "symmetric": self.symmetric,
            "association": self.association,
            "est_flops": self.est_flops,
            "left_flops": self.left_flops,
            "estimated_speedup": self.estimated_speedup,
            "seeds": list(self.seeds),
            "kernel": self.kernel,
        }

    def __str__(self) -> str:
        lines = [f"plan[{self.mode}] {self.path}"]
        if self.symmetric:
            lines.append("  symmetric: plan covers the half product W; M = W * W^T")
        lines.append(f"  association: {self.association}")
        lines.append(
            f"  est flops: {self.est_flops:.3g} "
            f"(left-to-right {self.left_flops:.3g}, "
            f"{self.estimated_speedup:.1f}x)"
        )
        lines.append(
            "  seeds: " + (", ".join(self.seeds) if self.seeds else "none")
        )
        if self.kernel is not None:
            lines.append(f"  top-k kernel: {self.kernel}")
        return "\n".join(lines)


class ChainPlan:
    """The DP's output for one chain: split table, seeds, cost estimates.

    ``split[(i, j)]`` records the best association split for *every*
    interval — including seeded ones — so execution can always fall
    back to recomputation when a seed was evicted after planning.
    """

    def __init__(self, steps, names, types, split, seeds, used_seeds, cost, left_cost):
        self.steps = tuple(steps)
        self.names = tuple(names)
        self.types = tuple(types)
        self.split = split
        self.seeds = seeds
        self.used_seeds = used_seeds
        self.cost = float(cost)
        self.left_cost = float(left_cost)

    def _label(self, i: int, j: int) -> str:
        return "-".join(self.types[i : j + 1])

    def association(self) -> str:
        """Parenthesized association string, seeds bracketed (``~`` marks
        a transpose of a reversed-path entry)."""

        def render(i, j):
            """One interval: a bracketed seed, a leaf, or a split pair."""
            seed = self.used_seeds.get((i, j))
            if seed is not None:
                mark = "~" if seed.inverse else ""
                return f"[{mark}{self._label(i, j)}]"
            if j - i == 1:
                return self._label(i, j)
            m = self.split[(i, j)]
            return f"({render(i, m)} * {render(m, j)})"

        return render(0, len(self.names))

    def seed_notes(self) -> tuple:
        """Human-readable description of each seed the plan consumes."""
        n = len(self.names)
        notes = []
        for (i, j), seed in sorted(self.used_seeds.items()):
            if i == 0 and j == n:
                kind = "full"
            elif i == 0:
                kind = "prefix"
            elif j == n:
                kind = "suffix"
            else:
                kind = "infix"
            via = " via transpose" if seed.inverse else ""
            notes.append(f"{kind} {self._label(i, j)} from cache{via}")
        return tuple(notes)


class ChainPlanner:
    """Plans and executes chain products for one engine.

    Call sites hold the engine's read lock; the counters are advisory
    observability (plain int adds), exposed through
    :meth:`~repro.engine.engine.MetaPathEngine.planner_info`.
    """

    def __init__(self, engine):
        self._engine = engine
        self.counters = {
            "plans": 0,
            "planned_products": 0,
            "seeded_spans": 0,
            "prefix_seeds": 0,
            "suffix_seeds": 0,
            "infix_seeds": 0,
            "full_seeds": 0,
            "inverse_seeds": 0,
            "evicted_seed_fallbacks": 0,
        }

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _leaf_stats(self, step) -> tuple:
        rel, forward = step
        s = self._engine.hin.relation_stats().oriented(rel.name, forward)
        return (s.rows, s.cols, s.nnz)

    def _probe_seeds(self, names: tuple) -> dict:
        """Counter-free scan of the cache for every subchain of length
        >= 2, in forward and inverse spelling (O(k²) peeks, k <= path
        length — negligible next to one sparse product)."""
        cache = self._engine._cache
        n = len(names)
        seeds = {}
        for i in range(n):
            for j in range(i + 2, n + 1):
                sub = names[i:j]
                value = cache.peek(("product", sub))
                inverse = False
                if value is None:
                    value = cache.peek(("product", _inverse_steps(sub)))
                    inverse = True
                if value is None:
                    continue
                shape = value.shape if not inverse else value.shape[::-1]
                seeds[(i, j)] = _Seed((i, j), inverse, shape, int(value.nnz))
        return seeds

    def plan(self, steps) -> ChainPlan:
        """Matrix-chain DP over ``steps`` (``(Relation, forward)`` pairs).

        Ties break deterministically: a split only replaces the
        incumbent on strictly lower cost, scanning splits left to
        right, so equal-cost chains plan identically across runs.
        """
        steps = tuple(steps)
        names = tuple((rel.name, fwd) for rel, fwd in steps)
        n = len(names)
        est = {}
        best = {}
        split = {}
        for i, step in enumerate(steps):
            est[(i, i + 1)] = self._leaf_stats(step)
            best[(i, i + 1)] = 0.0
        seeds = self._probe_seeds(names)
        used = {}
        for length in range(2, n + 1):
            for i in range(n - length + 1):
                j = i + length
                bcost, bsplit = math.inf, i + 1
                for m in range(i + 1, j):
                    c = best[(i, m)] + best[(m, j)] + _flops(est[(i, m)], est[(m, j)])
                    if c < bcost:
                        bcost, bsplit = c, m
                split[(i, j)] = bsplit
                est[(i, j)] = _combine(est[(i, bsplit)], est[(bsplit, j)])
                seed = seeds.get((i, j))
                if seed is not None:
                    # A cached value's stats are exact — better than any
                    # estimate for everything built on top of this span.
                    est[(i, j)] = (seed.shape[0], seed.shape[1], seed.nnz)
                    scost = float(seed.nnz) if seed.inverse else 0.0
                    if scost <= bcost:
                        best[(i, j)] = scost
                        used[(i, j)] = seed
                        continue
                best[(i, j)] = bcost
        left_cost, acc = 0.0, est[(0, 1)]
        for m in range(1, n):
            left_cost += _flops(acc, est[(m, m + 1)])
            acc = _combine(acc, est[(m, m + 1)])
        types = [self._engine._step_from_type(names[0])]
        types.extend(self._engine._step_to_type(s) for s in names)
        self.counters["plans"] += 1
        # Prune seeds to the spans the chosen tree actually evaluates.
        reachable = set()

        def walk(i, j):
            """Collect the spans the plan tree evaluates, stopping at seeds."""
            reachable.add((i, j))
            if (i, j) in used or j - i == 1:
                return
            m = split[(i, j)]
            walk(i, m)
            walk(m, j)

        walk(0, n)
        used = {span: seed for span, seed in used.items() if span in reachable}
        return ChainPlan(steps, names, types, split, seeds, used, best[(0, n)], left_cost)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def materialize(self, steps):
        """Planned, cached product over *steps* — the ``plan="auto"``
        replacement for the engine's left-to-right ``_product``."""
        steps = tuple(steps)
        if len(steps) == 1:
            rel, forward = steps[0]
            return self._engine.hin.oriented_matrix(rel, forward)
        plan = self.plan(steps)
        self._note_seeds(plan)
        self.counters["planned_products"] += 1
        return self.execute(plan)

    def execute(self, plan: ChainPlan):
        """Evaluate *plan*, consuming cached spans and caching every
        interval materialized along the way.

        Each interval re-checks the cache with a real ``get`` (hit
        counters reflect actual reuse); a seed evicted since planning
        falls through to the recorded split and is recomputed.
        """
        cache = self._engine._cache
        hin = self._engine.hin
        names = plan.names

        def build(i, j):
            """Materialize one interval: leaf, cache hit, or recursive split."""
            if j - i == 1:
                rel, forward = plan.steps[i]
                return hin.oriented_matrix(rel, forward)
            key = ("product", names[i:j])
            inverse_key = ("product", _inverse_steps(names[i:j]))
            found, value = cache.get_first((key, inverse_key))
            if found == key:
                return value
            if found is not None:
                out = _canonical(value.T.tocsr())
                cache.put(key, out)
                return out
            if (i, j) in plan.used_seeds:
                self.counters["evicted_seed_fallbacks"] += 1
            m = plan.split[(i, j)]
            out = _canonical(build(i, m).dot(build(m, j)).tocsr())
            cache.put(key, out)
            return out

        return build(0, len(names))

    def row_chain(self, steps) -> list:
        """Matrices to thread a single source row through, reusing the
        longest cached span (forward or inverse) at each position.

        This is how the top-k cut reaches single-source queries over
        uncached paths: only the query's candidate row is ever pushed
        through the chain, and cached subchains collapse several
        vector-matrix steps into one.  An inverse span is materialized
        forward (one transpose) and cached, so later queries — and
        incremental maintenance — see a normal product entry.
        """
        steps = tuple(steps)
        names = tuple((rel.name, fwd) for rel, fwd in steps)
        cache = self._engine._cache
        hin = self._engine.hin
        mats, i, n = [], 0, len(names)
        while i < n:
            advanced = False
            for j in range(n, i + 1, -1):
                sub = names[i:j]
                key = ("product", sub)
                inverse_key = ("product", _inverse_steps(sub))
                found, value = None, cache.peek(key)
                if value is not None:
                    found, value = cache.get_first((key,))
                elif cache.peek(inverse_key) is not None:
                    found, value = cache.get_first((inverse_key,))
                if found is None:
                    continue
                if found == inverse_key:
                    value = _canonical(value.T.tocsr())
                    cache.put(key, value)
                    self.counters["inverse_seeds"] += 1
                self.counters["seeded_spans"] += 1
                mats.append(value)
                i = j
                advanced = True
                break
            if not advanced:
                rel, forward = steps[i]
                mats.append(hin.oriented_matrix(rel, forward))
                i += 1
        return mats

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _note_seeds(self, plan: ChainPlan) -> None:
        n = len(plan.names)
        for (i, j), seed in plan.used_seeds.items():
            self.counters["seeded_spans"] += 1
            if seed.inverse:
                self.counters["inverse_seeds"] += 1
            if i == 0 and j == n:
                self.counters["full_seeds"] += 1
            elif i == 0:
                self.counters["prefix_seeds"] += 1
            elif j == n:
                self.counters["suffix_seeds"] += 1
            else:
                self.counters["infix_seeds"] += 1

    def report(self, steps, *, mode: str, path: str, symmetric: bool) -> PlanReport:
        """:class:`PlanReport` for *steps* without executing anything."""
        steps = tuple(steps)
        if len(steps) == 1:
            rel, forward = steps[0]
            label = (
                f"{self._engine._step_from_type((rel.name, forward))}-"
                f"{self._engine._step_to_type((rel.name, forward))}"
            )
            return PlanReport(path, mode, symmetric, label, 0.0, 0.0, ())
        plan = self.plan(steps)
        if mode == "left":
            association = plan._label(0, 1)
            for m in range(1, len(plan.names)):
                association = f"({association} * {plan._label(m, m + 1)})"
            return PlanReport(
                path, mode, symmetric, association,
                plan.left_cost, plan.left_cost, (),
            )
        return PlanReport(
            path, mode, symmetric, plan.association(),
            plan.cost, plan.left_cost, plan.seed_notes(),
        )
