"""Fused single-source PathSim top-k: no commuting matrix, no half product.

The materialized PathSim path (:meth:`MetaPathEngine._pathsim_parts`)
pays for the half product ``W`` — the full chain SpGEMM over every
source object — before it can answer even one query.  For a *cold* path
(nothing cached yet) a single-source query only ever needs

* one row of ``W`` (the query's), and
* the diagonal entries of ``M = W Wᵀ`` for the query's *candidates* —
  the objects its numerator row actually reaches; every other object
  scores exactly ``0.0``.

This module computes both by *threading rows through the relation
chain*: the query row enters the first step matrix as a CSR row slice
and each subsequent step is a thin sparse product, so cost is
proportional to the rows' reach, never the network.  Under
``plan="auto"`` the chains come from
:meth:`~repro.engine.planner.ChainPlanner.row_chain`, which collapses
the longest cached spans (forward or inverse spelling) into single
matrices — the fused kernel reuses whatever the planner already
materialized.  When the path's PathSim entry *is* cached, its
incrementally-maintained diagonal is read directly instead of
recomputing candidate norms.

Exactness
---------
Answers are **bit-identical** to the materialized path, not
epsilon-close, for the same reason the planner's association freedom
is: link weights are integers, and sums/products of integers in float64
are exact below 2^53 regardless of summation or association order.
Numerator entries, diagonal entries, and therefore every IEEE division
``2·M[i,j] / (diag[i] + diag[j])`` see identical operands on both
paths.  (Fractional weights would only agree to roundoff — the same
caveat the planner documents.)

Objects the numerator never reaches score ``+0.0`` on both paths: the
materialized kernel computes ``2·0/denom`` (or masks a zero
denominator), the fused kernel leaves the dense output's zeros in
place — including candidates whose true diagonal the fused path never
looked at, because ``0/denom`` is ``+0.0`` for every ``denom`` the
``where=denom != 0`` mask lets through.

Every function here is called by the engine under its read lock with
the cache already synced; none takes locks of its own.
"""

from __future__ import annotations

import numpy as np


__all__ = [
    "fused_row_scores",
    "fused_block_scores",
    "fused_partial_block",
]


def _half_chains(engine, mp, plan: str):
    """``(first, second)`` matrix chains for *mp*'s two symmetric halves.

    ``first`` multiplies out to the half product ``W`` (values), and
    ``second`` to ``Wᵀ``; threading a row through ``first + second``
    yields the commuting-matrix row.  Under ``plan="auto"`` each half
    goes through the planner's cached-span collapse."""
    steps = tuple(mp.steps())
    half = len(steps) // 2
    if plan == "auto":
        return (
            engine._planner.row_chain(steps[:half]),
            engine._planner.row_chain(steps[half:]),
        )
    mats = engine.hin.step_matrices(mp)
    return list(mats[:half]), list(mats[half:])


def _thread_rows(mats, idx: np.ndarray):
    """Rows *idx* of the chain product over *mats*: one CSR row slice
    followed by thin sparse products — cost bounded by the rows' reach."""
    block = mats[0][idx]
    for m in mats[1:]:
        block = block.dot(m)
    return block.tocsr()


def _row_norms(block) -> np.ndarray:
    """Squared row norms of a CSR block — the PathSim diagonal entries
    of its rows.

    Sums the squared stored entries per row straight off the CSR arrays
    (``multiply(block).sum(axis=1)`` builds a whole second matrix first).
    Values match the materialized diagonal exactly: integer weights make
    every square and sum exact in float64, independent of summation
    order."""
    out = np.zeros(block.shape[0])
    data = np.asarray(block.data, dtype=np.float64)
    if data.size == 0:
        return out
    sq = data * data
    indptr = block.indptr
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    # reduceat over the nonempty rows' start offsets: each segment runs
    # to the next listed start, and the skipped (empty) rows contribute
    # no entries in between, so segment sums are exactly the row sums.
    out[nonempty] = np.add.reduceat(sq, indptr[nonempty])
    return out


def fused_block_scores(engine, mp, idx, plan: str) -> np.ndarray:
    """Dense ``(len(idx), n)`` PathSim score block, fused.

    Bit-identical to ``engine.pathsim_rows(mp, idx, plan=plan)`` without
    materializing ``W`` or ``M``: the blocked generalization of the
    single-source kernel (the seed is a multi-row slice instead of one
    row).
    """
    idx = np.asarray(idx, dtype=np.int64)
    n = engine.hin.node_count(mp.source_type)
    if idx.size == 0:
        return np.zeros((0, n))
    first, second = _half_chains(engine, mp, plan)
    w_rows = _thread_rows(first, idx)  # the queries' rows of W
    diag_q = _row_norms(w_rows)
    num = w_rows
    for m in second:
        num = num.dot(m)
    num = num.tocsr()  # the queries' rows of M = W Wᵀ
    # Denominators only exist where numerators do: non-candidates score
    # +0.0 under any diagonal value (see module docstring), so a
    # zero-filled vector is exact outside the candidate set.
    diag = np.zeros(n)
    cand = np.unique(num.indices)
    if cand.size:
        cached = engine._cache.get(("pathsim", mp.canonical_key()))
        if cached is not None:
            diag[cand] = cached[1][cand]
        else:
            diag[cand] = _row_norms(_thread_rows(first, cand))
    dense = np.asarray(num.toarray(), dtype=np.float64)
    denom = diag_q[:, None] + diag[None, :]
    return np.divide(
        2.0 * dense, denom, out=np.zeros_like(dense), where=denom != 0
    )


def _suffix_bound(v: float, diag_i: float) -> float:
    """Upper bound on any PathSim score a candidate with numerator
    ``<= v`` can still achieve against a query of diagonal *diag_i*.

    Cauchy–Schwarz gives ``diag_j >= v² / diag_i`` for a candidate whose
    numerator is ``v``, so ``2v / (diag_i + diag_j)`` is maximized at
    that floor: ``2·v·diag_i / (diag_i² + v²)`` — monotone increasing in
    ``v`` below ``diag_i`` (above it the score cap of ``1.0`` applies).
    Inflated by a relative margin so float roundoff in evaluating the
    bound can never place it below a score the bound must dominate.
    """
    if diag_i <= 0.0:
        return 0.0
    if v >= diag_i:
        return 1.0
    return (2.0 * v * diag_i) / (diag_i * diag_i + v * v) * (1.0 + 1e-9)


def fused_row_scores(
    engine, mp, i: int, plan: str, need: int | None = None
) -> np.ndarray:
    """Dense length-*n* PathSim scores from source *i*, fused.

    With ``need=None``, bit-identical to
    ``engine.pathsim_row(mp, i, plan=plan)`` at every position (``M[i,
    i]`` — the query's own diagonal — falls out of the half-way
    threading state).

    With ``need`` set, only enough candidates to determine the top
    *need* selection exactly are scored: candidates are visited in
    descending numerator order, their diagonals threaded in doubling
    blocks, and the scan stops once :func:`_suffix_bound` proves no
    unvisited candidate can strictly beat the running *need*-th best
    score.  Pruned candidates keep score ``0.0`` — positions beyond the
    top *need* of the returned vector are therefore NOT the true
    scores; callers selecting ``k <= need`` entries see bit-identical
    answers.
    """
    idx = np.array([i], dtype=np.int64)
    first, second = _half_chains(engine, mp, plan)
    w_q = _thread_rows(first, idx)
    diag_i = float(_row_norms(w_q)[0])
    num = w_q
    for m in second:
        num = num.dot(m)
    num = num.tocsr()
    n = num.shape[1]
    scores = np.zeros(n)
    if num.nnz == 0:
        return scores
    cols = num.indices.astype(np.int64, copy=False)
    vals = np.asarray(num.data, dtype=np.float64)

    cached = engine._cache.get(("pathsim", mp.canonical_key()))
    if cached is not None:
        denom = diag_i + cached[1][cols]
        scores[cols] = np.divide(
            2.0 * vals, denom, out=np.zeros_like(vals), where=denom != 0
        )
        return scores

    def score_into(take: np.ndarray) -> np.ndarray:
        """Thread diagonals for candidate positions *take*, fill scores."""
        ccols, cvals = cols[take], vals[take]
        denom = diag_i + _row_norms(_thread_rows(first, ccols))
        block = np.divide(
            2.0 * cvals, denom, out=np.zeros_like(cvals), where=denom != 0
        )
        scores[ccols] = block
        return block

    # The bound only dominates for non-negative numerators (the library's
    # weights are counts); anything else falls back to the full scan.
    if need is None or need >= cols.size or vals.min() < 0.0:
        score_into(np.arange(cols.size))
        return scores

    order = np.lexsort((cols, -vals))  # descending numerator, then index
    pool = np.empty(0)  # running top-`need` computed scores
    done, chunk = 0, max(4 * max(need, 1), 64)
    while done < order.size:
        computed = score_into(order[done : done + chunk])
        done += computed.size
        if done >= order.size:
            break
        pool = np.concatenate([pool, computed])
        if pool.size > need:
            pool = np.partition(pool, pool.size - need)[pool.size - need :]
        if pool.size >= need and _suffix_bound(
            vals[order[done]], diag_i
        ) < pool.min():
            break  # no unvisited candidate can strictly beat the cut
        chunk *= 2
    return scores


def fused_partial_block(engine, mp, rows, candidates, plan: str) -> np.ndarray:
    """Fused ``(len(rows), len(candidates))`` partial score block.

    Bit-identical to ``engine.pathsim_partial_block`` — same operand
    values, same CSR-times-dense kernel, same division — but both
    operand blocks are *threaded* (rows of ``W`` via the chain) instead
    of sliced from a materialized half product.  This is what keeps
    standing-query maintenance (:mod:`repro.watch`) delta-priced on
    paths nobody ever materialized: per commit it costs the touched
    rows' reach, not a full chain SpGEMM.
    """
    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(candidates, dtype=np.int64)
    if rows.size == 0 or idx.size == 0:
        return np.zeros((rows.size, idx.size))
    first, _ = _half_chains(engine, mp, plan)
    w_rows = _thread_rows(first, rows)
    w_cand = _thread_rows(first, idx)
    cached = engine._cache.get(("pathsim", mp.canonical_key()))
    if cached is not None:
        diag_r, diag_c = cached[1][rows], cached[1][idx]
    else:
        diag_r, diag_c = _row_norms(w_rows), _row_norms(w_cand)
    # Same F-order densification trick as the materialized kernel: the
    # transpose view is C-contiguous with no second copy.
    block = np.asarray(w_rows.toarray(order="F"), dtype=np.float64).T
    dots = w_cand.dot(block)  # (len(idx), len(rows))
    denom = diag_c[:, None] + diag_r[None, :]
    scores = np.divide(
        2.0 * dots,
        denom,
        out=np.zeros_like(dots, dtype=np.float64),
        where=denom != 0,
    )
    return scores.T
