"""Meta-path query engine: shared materialization + top-k serving.

This package is the serving layer between the network structures
(:mod:`repro.networks`) and the algorithms that consume meta-path
products (:mod:`repro.similarity`, :mod:`repro.core`, :mod:`repro.olap`).
See :mod:`repro.engine.engine` for the design and
``docs/ARCHITECTURE.md`` for how it fits the layer diagram.
"""

from repro.engine.engine import MetaPathEngine
from repro.engine.fused import (
    fused_block_scores,
    fused_partial_block,
    fused_row_scores,
)
from repro.engine.planner import ChainPlan, ChainPlanner, PlanReport
from repro.engine.topk import finalize_top_k, top_k_indices

__all__ = [
    "MetaPathEngine",
    "ChainPlanner",
    "ChainPlan",
    "PlanReport",
    "top_k_indices",
    "finalize_top_k",
    "fused_row_scores",
    "fused_block_scores",
    "fused_partial_block",
]
