"""Elementary network measures: density and degree statistics.

Tutorial §2(a)i — "Measuring information networks: density, connectivity,
centrality, reachability analysis."
"""

from __future__ import annotations

import numpy as np

from repro.networks.graph import Graph

__all__ = ["density", "average_degree", "degree_histogram", "degree_statistics"]


def density(graph: Graph) -> float:
    """Fraction of possible edges present.

    ``2m / (n(n-1))`` for undirected graphs, ``m / (n(n-1))`` for directed;
    self-loops are excluded from both numerator and denominator.  Graphs
    with fewer than two nodes have density 0 by convention.
    """
    n = graph.n_nodes
    if n < 2:
        return 0.0
    loops = int((graph.adjacency.diagonal() != 0).sum())
    m = graph.n_edges - loops
    possible = n * (n - 1)
    if not graph.directed:
        possible //= 2
    return m / possible


def average_degree(graph: Graph, *, weighted: bool = False) -> float:
    """Mean (out-)degree over all nodes (0 for the empty graph)."""
    if graph.n_nodes == 0:
        return 0.0
    return float(graph.degree(weighted=weighted).mean())


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree exactly *d*."""
    degs = graph.degree().astype(np.int64)
    if degs.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)


def degree_statistics(graph: Graph) -> dict:
    """Summary statistics of the degree distribution.

    Returns a dict with ``min``, ``max``, ``mean``, ``median``, ``std`` —
    the numbers the tutorial's "general statistical behaviour" section
    reports for real networks.
    """
    degs = graph.degree()
    if degs.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0, "std": 0.0}
    return {
        "min": float(degs.min()),
        "max": float(degs.max()),
        "mean": float(degs.mean()),
        "median": float(np.median(degs)),
        "std": float(degs.std()),
    }
