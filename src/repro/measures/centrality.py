"""Centrality measures: degree, closeness, betweenness (Brandes), eigenvector.

Tutorial §2(a)i.  Betweenness uses Brandes' accumulation algorithm over
BFS shortest-path DAGs (unweighted); eigenvector centrality is a power
iteration on the adjacency matrix.
"""

from __future__ import annotations

import warnings
from collections import deque

import numpy as np

from repro.exceptions import ConvergenceWarning, GraphError
from repro.networks.graph import Graph
from repro.utils.rng import ensure_rng

__all__ = [
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "eigenvector_centrality",
]


def degree_centrality(graph: Graph) -> np.ndarray:
    """Degree divided by ``n - 1`` (the classical normalization)."""
    n = graph.n_nodes
    if n <= 1:
        return np.zeros(n)
    return graph.degree() / (n - 1)


def closeness_centrality(graph: Graph) -> np.ndarray:
    """Harmonically scaled closeness with the Wasserman–Faust correction.

    For node *v* with reachable set of size ``r`` (excluding *v*) and total
    distance ``s``: ``closeness(v) = (r / (n-1)) * (r / s)``.  The
    correction keeps scores comparable across components; isolated nodes
    score 0.
    """
    from scipy.sparse import csgraph

    n = graph.n_nodes
    if n <= 1:
        return np.zeros(n)
    dists = csgraph.shortest_path(
        graph.adjacency, method="D", directed=graph.directed, unweighted=True
    )
    out = np.zeros(n)
    for v in range(n):
        row = dists[v]
        finite = row[np.isfinite(row)]
        reachable = finite.size - 1  # exclude self
        if reachable <= 0:
            continue
        total = finite.sum()
        if total > 0:
            out[v] = (reachable / (n - 1)) * (reachable / total)
    return out


def betweenness_centrality(graph: Graph, *, normalized: bool = True) -> np.ndarray:
    """Brandes' betweenness centrality for unweighted graphs.

    Counts, for every node, the fraction of all-pairs shortest paths
    passing through it.  ``normalized=True`` divides by the number of
    ordered/unordered pairs not involving the node.
    """
    n = graph.n_nodes
    scores = np.zeros(n)
    adj_indices = graph.adjacency.indices
    adj_indptr = graph.adjacency.indptr

    for s in range(n):
        # BFS from s building the shortest-path DAG.
        stack: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        queue: deque[int] = deque([s])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in adj_indices[adj_indptr[v] : adj_indptr[v + 1]]:
                w = int(w)
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        # Back-propagate dependencies.
        delta = np.zeros(n)
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                scores[w] += delta[w]

    if not graph.directed:
        scores /= 2.0
    if normalized and n > 2:
        denom = (n - 1) * (n - 2)
        if not graph.directed:
            denom /= 2.0
        scores /= denom
    return scores


def eigenvector_centrality(
    graph: Graph, *, max_iter: int = 200, tol: float = 1e-8, seed=None
) -> np.ndarray:
    """Principal-eigenvector centrality via power iteration.

    Requires at least one edge; on disconnected graphs the scores
    concentrate on the component carrying the dominant eigenvalue, which is
    the standard behaviour.
    """
    n = graph.n_nodes
    if n == 0:
        return np.zeros(0)
    adj = graph.adjacency
    if adj.nnz == 0:
        raise GraphError("eigenvector centrality undefined for an empty graph")
    rng = ensure_rng(seed)
    x = rng.random(n) + 1.0
    x /= np.linalg.norm(x)
    matvec = adj.T if graph.directed else adj  # incoming links confer status
    for _ in range(max_iter):
        # The +x shift (power iteration on A + I) preserves eigenvectors but
        # breaks the +/-lambda oscillation on bipartite graphs.
        x_new = matvec.dot(x) + x
        norm = np.linalg.norm(x_new)
        if norm == 0:
            raise GraphError("power iteration collapsed to zero vector")
        x_new /= norm
        if np.abs(x_new - x).max() < tol:
            return np.abs(x_new)
        x = x_new
    warnings.warn(
        f"eigenvector centrality did not converge in {max_iter} iterations",
        ConvergenceWarning,
        stacklevel=2,
    )
    return np.abs(x)
