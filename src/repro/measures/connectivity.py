"""Connectivity analysis: components and reachable sets.

Built on ``scipy.sparse.csgraph`` so component extraction stays linear in
the number of edges even for the larger case-study networks.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from repro.networks.graph import Graph

__all__ = [
    "connected_components",
    "n_components",
    "is_connected",
    "largest_component",
    "component_sizes",
]


def connected_components(graph: Graph, *, strong: bool = False) -> np.ndarray:
    """Component label per node.

    For directed graphs, ``strong=True`` computes strongly connected
    components; the default treats edges as bidirectional (weak
    components), which is the convention for the tutorial's statistics.
    """
    connection = "strong" if (strong and graph.directed) else "weak"
    _, labels = csgraph.connected_components(
        graph.adjacency, directed=graph.directed, connection=connection
    )
    return labels


def n_components(graph: Graph, *, strong: bool = False) -> int:
    """Number of (weakly/strongly) connected components."""
    if graph.n_nodes == 0:
        return 0
    labels = connected_components(graph, strong=strong)
    return int(labels.max()) + 1


def is_connected(graph: Graph, *, strong: bool = False) -> bool:
    """True when the graph has exactly one component (empty graph: False)."""
    return graph.n_nodes > 0 and n_components(graph, strong=strong) == 1


def component_sizes(graph: Graph, *, strong: bool = False) -> np.ndarray:
    """Sizes of all components, largest first."""
    if graph.n_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    labels = connected_components(graph, strong=strong)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


def largest_component(graph: Graph, *, strong: bool = False) -> tuple[Graph, np.ndarray]:
    """The giant component as a subgraph, plus the original node indices.

    The tutorial's statistics (diameter, path lengths) are conventionally
    reported on the giant component; the returned index array maps the
    subgraph's nodes back to the parent graph.
    """
    labels = connected_components(graph, strong=strong)
    if labels.size == 0:
        return graph, np.zeros(0, dtype=np.int64)
    counts = np.bincount(labels)
    giant = int(counts.argmax())
    nodes = np.flatnonzero(labels == giant)
    return graph.subgraph(nodes), nodes
