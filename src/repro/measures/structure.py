"""Additional structural measures: degree assortativity and k-cores.

Extensions of the tutorial's §2(a) measurement toolbox.  Degree
assortativity (Newman) quantifies whether hubs attach to hubs; the k-core
decomposition peels the network into nested shells of minimum degree k —
both standard descriptive statistics for the case-study networks.
"""

from __future__ import annotations

import numpy as np

from repro.networks.graph import Graph

__all__ = ["degree_assortativity", "k_core_decomposition", "k_core"]


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edges (Newman 2002).

    Positive: hubs link to hubs (social networks); negative: hubs link to
    leaves (technological networks, BA graphs).  Requires at least one
    edge between nodes of non-uniform degree; returns 0.0 for regular
    graphs (no variance).
    """
    g = graph.to_undirected().without_self_loops()
    if g.n_edges == 0:
        raise ValueError("assortativity undefined for an edgeless graph")
    degs = g.degree()
    xs, ys = [], []
    for u, v, _ in g.edges():
        # each undirected edge contributes both orientations
        xs.extend((degs[u], degs[v]))
        ys.extend((degs[v], degs[u]))
    x = np.asarray(xs)
    y = np.asarray(ys)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def k_core_decomposition(graph: Graph) -> np.ndarray:
    """Core number per node: the largest k such that the node survives in
    the k-core (the maximal subgraph of minimum degree k).

    Peeling with a lazy-deletion min-heap: repeatedly remove the node of
    minimum remaining degree; its core number is the running maximum of
    the degrees at removal time.  ``O((n + m) log n)``.
    """
    import heapq

    g = graph.to_undirected().without_self_loops()
    n = g.n_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    current = g.degree().astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    heap = [(int(d), v) for v, d in enumerate(current)]
    heapq.heapify(heap)
    removed = np.zeros(n, dtype=bool)
    level = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != current[v]:
            continue  # stale entry
        removed[v] = True
        level = max(level, int(d))
        core[v] = level
        for w in g.neighbors(v):
            w = int(w)
            if not removed[w]:
                current[w] -= 1
                heapq.heappush(heap, (int(current[w]), w))
    return core


def k_core(graph: Graph, k: int) -> tuple[Graph, np.ndarray]:
    """The k-core subgraph and the original indices of its nodes.

    Returns an empty graph when no node has core number >= k.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    cores = k_core_decomposition(graph)
    nodes = np.flatnonzero(cores >= k)
    return graph.to_undirected().subgraph(nodes), nodes
