"""Network measures: density, centrality, connectivity, reachability,
power laws, small worlds, and densification (tutorial §2(a))."""

from repro.measures.basic import (
    average_degree,
    degree_histogram,
    degree_statistics,
    density,
)
from repro.measures.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
)
from repro.measures.connectivity import (
    component_sizes,
    connected_components,
    is_connected,
    largest_component,
    n_components,
)
from repro.measures.densification import (
    DensificationFit,
    diameter_series,
    fit_densification,
    snapshots_by_node_arrival,
)
from repro.measures.powerlaw import PowerLawFit, fit_power_law, power_law_ccdf
from repro.measures.reachability import (
    average_path_length,
    diameter,
    effective_diameter,
    reachable_set,
    shortest_path_lengths,
)
from repro.measures.smallworld import (
    average_clustering,
    local_clustering,
    small_world_sigma,
    transitivity,
)
from repro.measures.structure import (
    degree_assortativity,
    k_core,
    k_core_decomposition,
)

__all__ = [
    "density",
    "average_degree",
    "degree_histogram",
    "degree_statistics",
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "eigenvector_centrality",
    "connected_components",
    "n_components",
    "is_connected",
    "largest_component",
    "component_sizes",
    "shortest_path_lengths",
    "reachable_set",
    "diameter",
    "effective_diameter",
    "average_path_length",
    "PowerLawFit",
    "fit_power_law",
    "power_law_ccdf",
    "local_clustering",
    "average_clustering",
    "transitivity",
    "small_world_sigma",
    "DensificationFit",
    "snapshots_by_node_arrival",
    "fit_densification",
    "diameter_series",
    "degree_assortativity",
    "k_core_decomposition",
    "k_core",
]
