"""Reachability analysis: shortest paths, diameters, path-length statistics.

Unweighted distances use breadth-first search through
``scipy.sparse.csgraph``; the *effective diameter* (90th-percentile
pairwise distance) is the statistic the tutorial's evolution material
tracks over time, because the true diameter is noise-dominated on real
networks.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from repro.exceptions import NodeNotFoundError
from repro.networks.graph import Graph
from repro.utils.rng import ensure_rng

__all__ = [
    "shortest_path_lengths",
    "reachable_set",
    "diameter",
    "effective_diameter",
    "average_path_length",
]


def shortest_path_lengths(graph: Graph, source: int) -> np.ndarray:
    """Unweighted shortest-path distance from *source* to every node.

    Unreachable nodes get ``np.inf``.
    """
    if not 0 <= source < graph.n_nodes:
        raise NodeNotFoundError(f"source {source} out of range")
    dist = csgraph.breadth_first_order  # noqa: F841  (documented alternative)
    lengths = csgraph.shortest_path(
        graph.adjacency, method="D", directed=graph.directed,
        unweighted=True, indices=source,
    )
    return np.asarray(lengths).ravel()


def reachable_set(graph: Graph, source: int) -> np.ndarray:
    """Indices of all nodes reachable from *source* (including itself)."""
    lengths = shortest_path_lengths(graph, source)
    return np.flatnonzero(np.isfinite(lengths))


def _pairwise_distances(graph: Graph, sources: np.ndarray) -> np.ndarray:
    lengths = csgraph.shortest_path(
        graph.adjacency, method="D", directed=graph.directed,
        unweighted=True, indices=sources,
    )
    return np.atleast_2d(np.asarray(lengths))


def _sample_sources(graph: Graph, n_sources, seed) -> np.ndarray:
    n = graph.n_nodes
    if n_sources is None or n_sources >= n:
        return np.arange(n)
    rng = ensure_rng(seed)
    return rng.choice(n, size=n_sources, replace=False)


def diameter(graph: Graph, *, n_sources: int | None = None, seed=None) -> float:
    """Longest finite shortest-path distance.

    ``n_sources`` caps the number of BFS roots (uniform sample) so the
    computation stays tractable on large graphs; ``None`` is exact.
    Returns 0.0 for graphs with < 2 nodes and ``inf`` never — unreachable
    pairs are simply ignored (use :func:`repro.measures.is_connected` to
    check connectivity first).
    """
    if graph.n_nodes < 2:
        return 0.0
    sources = _sample_sources(graph, n_sources, seed)
    dists = _pairwise_distances(graph, sources)
    finite = dists[np.isfinite(dists)]
    return float(finite.max()) if finite.size else 0.0


def effective_diameter(
    graph: Graph, *, percentile: float = 90.0, n_sources: int | None = None, seed=None
) -> float:
    """Distance within which *percentile*% of connected pairs lie.

    Linear interpolation over the distance CDF, following the convention of
    the densification literature the tutorial cites.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    if graph.n_nodes < 2:
        return 0.0
    sources = _sample_sources(graph, n_sources, seed)
    dists = _pairwise_distances(graph, sources)
    finite = dists[np.isfinite(dists)]
    finite = finite[finite > 0]
    if finite.size == 0:
        return 0.0
    return float(np.percentile(finite, percentile, method="linear"))


def average_path_length(
    graph: Graph, *, n_sources: int | None = None, seed=None
) -> float:
    """Mean shortest-path distance over connected ordered pairs."""
    if graph.n_nodes < 2:
        return 0.0
    sources = _sample_sources(graph, n_sources, seed)
    dists = _pairwise_distances(graph, sources)
    finite = dists[np.isfinite(dists)]
    finite = finite[finite > 0]
    return float(finite.mean()) if finite.size else 0.0
