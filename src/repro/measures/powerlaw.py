"""Power-law fitting for degree distributions (tutorial §2(a)ii).

Implements the discrete maximum-likelihood estimator of Clauset, Shalizi &
Newman (2009): given samples ``x >= xmin``, the exponent estimate is

    alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))

with the Kolmogorov–Smirnov distance between empirical and fitted CCDFs as
the goodness-of-fit, and ``xmin`` chosen to minimize that distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "power_law_ccdf"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law fit.

    Attributes
    ----------
    alpha:
        Estimated exponent (> 1).
    xmin:
        Lower cutoff used for the fit.
    ks_distance:
        Kolmogorov–Smirnov distance between empirical and model CCDFs on
        the tail ``x >= xmin``.
    n_tail:
        Number of samples in the fitted tail.
    """

    alpha: float
    xmin: int
    ks_distance: float
    n_tail: int


def _mle_alpha(tail: np.ndarray, xmin: int) -> float:
    # Discrete MLE with the standard continuous approximation (CSN eq. 3.7).
    return 1.0 + tail.size / np.log(tail / (xmin - 0.5)).sum()


def power_law_ccdf(x: np.ndarray, alpha: float, xmin: int) -> np.ndarray:
    """Model CCDF ``P(X >= x)`` of the (approximated) discrete power law."""
    x = np.asarray(x, dtype=np.float64)
    return ((x - 0.5) / (xmin - 0.5)) ** (1.0 - alpha)


def _ks_distance(tail: np.ndarray, alpha: float, xmin: int) -> float:
    values = np.sort(np.unique(tail))
    # Empirical CCDF at each observed value.
    counts = np.array([(tail >= v).sum() for v in values], dtype=np.float64)
    empirical = counts / tail.size
    model = power_law_ccdf(values, alpha, xmin)
    return float(np.abs(empirical - model).max())


def fit_power_law(samples, *, xmin: int | None = None) -> PowerLawFit:
    """Fit a discrete power law to positive integer samples (e.g. degrees).

    When *xmin* is ``None`` the cutoff is scanned over distinct sample
    values (>= 2) and the fit minimizing the KS distance is returned —
    the Clauset–Shalizi–Newman procedure.  Zeros are dropped (a node of
    degree 0 carries no tail information).
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    x = x[x > 0]
    if x.size < 2:
        raise ValueError("need at least two positive samples to fit a power law")
    if np.any(x != np.floor(x)):
        raise ValueError("samples must be non-negative integers (e.g. degrees)")

    if xmin is not None:
        if xmin < 1:
            raise ValueError(f"xmin must be >= 1, got {xmin}")
        tail = x[x >= xmin]
        if tail.size < 2:
            raise ValueError(f"fewer than two samples >= xmin={xmin}")
        alpha = _mle_alpha(tail, xmin)
        return PowerLawFit(alpha, int(xmin), _ks_distance(tail, alpha, xmin), tail.size)

    candidates = np.unique(x)
    # xmin = 1 makes (xmin - 0.5) = 0.5 valid, but scanning from min keeps
    # at least 10 tail points to avoid degenerate fits.
    best: PowerLawFit | None = None
    for cand in candidates:
        cand = int(cand)
        if cand < 1:
            continue
        tail = x[x >= cand]
        if tail.size < 10:
            break
        alpha = _mle_alpha(tail, cand)
        ks = _ks_distance(tail, alpha, cand)
        if best is None or ks < best.ks_distance:
            best = PowerLawFit(alpha, cand, ks, tail.size)
    if best is None:
        # fewer than 10 samples overall: fit on everything from the minimum
        cand = int(candidates[0]) if candidates[0] >= 1 else 1
        tail = x[x >= cand]
        alpha = _mle_alpha(tail, cand)
        best = PowerLawFit(alpha, cand, _ks_distance(tail, alpha, cand), tail.size)
    return best
