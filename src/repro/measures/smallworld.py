"""Small-world analysis: clustering coefficients and the sigma index.

Tutorial §2(a)ii — "the small world phenomenon".  A network is small-world
when it clusters like a lattice but has path lengths like a random graph;
:func:`small_world_sigma` quantifies this as
``(C / C_rand) / (L / L_rand)`` against an Erdős–Rényi null model of the
same size and density.
"""

from __future__ import annotations

import numpy as np

from repro.measures.connectivity import largest_component
from repro.measures.reachability import average_path_length
from repro.networks.graph import Graph

__all__ = [
    "local_clustering",
    "average_clustering",
    "transitivity",
    "small_world_sigma",
]


def local_clustering(graph: Graph) -> np.ndarray:
    """Per-node clustering coefficient (undirected, unweighted).

    ``c(v) = 2 * triangles(v) / (deg(v) * (deg(v) - 1))``; nodes of degree
    < 2 score 0.  Edge weights and self-loops are ignored.
    """
    g = graph.to_undirected().without_self_loops()
    adj = (g.adjacency != 0).astype(np.float64)
    degs = np.asarray(adj.sum(axis=1)).ravel()
    # triangles through v = (A^3)_{vv} / 2
    a2 = adj.dot(adj)
    tri = np.asarray(a2.multiply(adj).sum(axis=1)).ravel() / 2.0
    denom = degs * (degs - 1) / 2.0
    out = np.zeros(g.n_nodes)
    mask = denom > 0
    out[mask] = tri[mask] / denom[mask]
    return out


def average_clustering(graph: Graph) -> float:
    """Mean of the local clustering coefficients (0 for the empty graph)."""
    if graph.n_nodes == 0:
        return 0.0
    return float(local_clustering(graph).mean())


def transitivity(graph: Graph) -> float:
    """Global clustering: ``3 * triangles / connected triples``."""
    g = graph.to_undirected().without_self_loops()
    adj = (g.adjacency != 0).astype(np.float64)
    degs = np.asarray(adj.sum(axis=1)).ravel()
    triangles = adj.dot(adj).multiply(adj).sum() / 6.0
    triples = (degs * (degs - 1) / 2.0).sum()
    if triples == 0:
        return 0.0
    return float(3.0 * triangles / triples)


def small_world_sigma(
    graph: Graph,
    *,
    n_random: int = 5,
    n_sources: int | None = 64,
    seed=None,
) -> float:
    """Small-world index ``sigma = (C/C_rand) / (L/L_rand)``.

    *C* and *L* are the average clustering and average path length of the
    giant component; the null model is Erdős–Rényi with matching node and
    edge counts, averaged over *n_random* draws.  ``sigma >> 1`` indicates
    small-world structure.  Path lengths are estimated from ``n_sources``
    BFS roots to keep the computation laptop-scale.
    """
    from repro.networks.generators import erdos_renyi
    from repro.utils.rng import spawn_rngs

    giant, _ = largest_component(graph.to_undirected())
    if giant.n_nodes < 3:
        raise ValueError("graph too small for small-world analysis")
    c = average_clustering(giant)
    path_len = average_path_length(giant, n_sources=n_sources, seed=seed)

    n = giant.n_nodes
    p = 2.0 * giant.n_edges / (n * (n - 1))
    c_rand_vals, l_rand_vals = [], []
    for rng in spawn_rngs(seed, n_random):
        rand = erdos_renyi(n, p, seed=rng)
        rand_giant, _ = largest_component(rand)
        if rand_giant.n_nodes < 2:
            continue
        c_rand_vals.append(average_clustering(rand_giant))
        l_rand_vals.append(
            average_path_length(rand_giant, n_sources=n_sources, seed=rng)
        )
    c_rand = float(np.mean(c_rand_vals)) if c_rand_vals else 0.0
    l_rand = float(np.mean(l_rand_vals)) if l_rand_vals else 0.0
    if c_rand == 0 or l_rand == 0 or path_len == 0:
        raise ValueError("degenerate null model; graph too small or too sparse")
    return (c / c_rand) / (path_len / l_rand)
