"""Densification and evolution of dynamic networks (tutorial §2(a)iii).

Growing information networks obey the *densification power law*
``e(t) ∝ n(t)^a`` with ``1 < a < 2``, and their effective diameter
*shrinks* over time.  These helpers fit the exponent from snapshots and
track the diameter series, with a snapshot extractor for growth models
whose node ids are ordered by arrival time (our generators' convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measures.reachability import effective_diameter
from repro.networks.graph import Graph

__all__ = [
    "DensificationFit",
    "snapshots_by_node_arrival",
    "fit_densification",
    "diameter_series",
]


@dataclass(frozen=True)
class DensificationFit:
    """Least-squares fit of ``log e = a * log n + b``.

    ``exponent`` is *a*; ``r_squared`` the coefficient of determination.
    """

    exponent: float
    intercept: float
    r_squared: float


def snapshots_by_node_arrival(graph: Graph, sizes) -> list[Graph]:
    """Induced subgraphs on the first ``k`` nodes for each ``k`` in *sizes*.

    Valid for growth processes (BA, forest fire) where node id order is
    arrival order, so the prefix subgraph is the historical snapshot.
    """
    out: list[Graph] = []
    for k in sizes:
        k = int(k)
        if not 1 <= k <= graph.n_nodes:
            raise ValueError(
                f"snapshot size {k} out of range 1..{graph.n_nodes}"
            )
        out.append(graph.subgraph(np.arange(k)))
    return out


def fit_densification(snapshots) -> DensificationFit:
    """Fit the densification exponent from a sequence of graph snapshots.

    Snapshots with < 2 nodes or 0 edges are skipped (their logs are
    undefined); at least two usable snapshots are required.
    """
    ns, es = [], []
    for g in snapshots:
        if g.n_nodes >= 2 and g.n_edges >= 1:
            ns.append(g.n_nodes)
            es.append(g.n_edges)
    if len(ns) < 2:
        raise ValueError("need at least two non-degenerate snapshots")
    x = np.log(np.asarray(ns, dtype=np.float64))
    y = np.log(np.asarray(es, dtype=np.float64))
    a, b = np.polyfit(x, y, deg=1)
    pred = a * x + b
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return DensificationFit(float(a), float(b), r2)


def diameter_series(
    snapshots, *, percentile: float = 90.0, n_sources: int | None = 64, seed=None
) -> list[float]:
    """Effective diameter of each snapshot (the tutorial's shrinking-diameter plot)."""
    return [
        effective_diameter(
            g, percentile=percentile, n_sources=n_sources, seed=seed
        )
        for g in snapshots
    ]
