"""Tuple-ID propagation primitives shared by CrossClus and CrossMine.

Both cross-relational algorithms avoid physical joins by carrying sparse
correspondence matrices between the target table's tuples and the rows of
whatever table the current join path reaches:

* :func:`join_matrix` — the one-hop correspondence induced by the (unique)
  foreign key between two tables, in either direction;
* :func:`value_indicator` — one-hot encoding of a categorical column, so
  ``propagated.dot(indicator)`` counts, per target tuple, how often each
  value is reached.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import RelationalError
from repro.relational.database import Database

__all__ = ["join_matrix", "value_indicator"]


def join_matrix(db: Database, src: str, dst: str) -> sp.csr_matrix:
    """Sparse ``(len(src), len(dst))`` tuple-correspondence matrix induced
    by the foreign key(s) joining the two tables, in either direction."""
    src_table = db.table(src)
    dst_table = db.table(dst)
    pairs: list[tuple[int, int]] = []
    for fk in db.foreign_keys_of(src):
        if fk.ref_table == dst:
            dst_index = {
                k: i for i, k in enumerate(dst_table.column(dst_table.primary_key))
            }
            col = src_table.column(fk.column)
            pairs.extend(
                (i, dst_index[v]) for i, v in enumerate(col) if v is not None
            )
    for fk in db.foreign_keys_into(src):
        if fk.table == dst:
            src_index = {
                k: i for i, k in enumerate(src_table.column(src_table.primary_key))
            }
            col = dst_table.column(fk.column)
            pairs.extend(
                (src_index[v], j) for j, v in enumerate(col) if v is not None
            )
    if not pairs:
        raise RelationalError(f"no foreign key joins {src!r} and {dst!r}")
    rows = [p[0] for p in pairs]
    cols = [p[1] for p in pairs]
    m = sp.coo_matrix(
        (np.ones(len(pairs)), (rows, cols)),
        shape=(len(src_table), len(dst_table)),
    ).tocsr()
    m.sum_duplicates()
    return m


def value_indicator(
    db: Database, table: str, column: str
) -> tuple[sp.csr_matrix, list]:
    """One-hot ``(n_rows, n_values)`` matrix of *table.column*, plus the
    value vocabulary in first-appearance order (``None`` rows are zero)."""
    t = db.table(table)
    values = t.column(column)
    vocab: dict = {}
    for v in values:
        if v is not None and v not in vocab:
            vocab[v] = len(vocab)
    rows, cols = [], []
    for i, v in enumerate(values):
        if v is not None:
            rows.append(i)
            cols.append(vocab[v])
    m = sp.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(len(t), len(vocab))
    ).tocsr()
    return m, list(vocab)
