"""Turning a relational database into a heterogeneous information network.

This module implements the tutorial's opening move — "viewing databases as
information networks" — mechanically: entity tables become node types, and
links are induced either by a direct foreign key between two entity tables
or by a junction table holding foreign keys to both.

Two entry points:

* :func:`build_hin` — explicit control over which tables are entities and
  which columns induce links.
* :func:`infer_hin` — zero-config heuristic: every table with a primary key
  that is referenced by someone is an entity; every table holding >= 2
  foreign keys is a junction.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import scipy.sparse as sp

from repro.exceptions import ForeignKeyError, RelationalError
from repro.networks.hin import HIN
from repro.networks.schema import NetworkSchema, Relation
from repro.relational.database import Database, ForeignKey

__all__ = ["LinkSpec", "build_hin", "infer_hin"]


@dataclass(frozen=True)
class LinkSpec:
    """How one relation of the HIN is derived from the database.

    Either a *junction*: ``table`` holds two FK columns ``source_column`` /
    ``target_column`` referencing the two entity tables; or a *direct* FK:
    ``table`` is itself an entity table and ``source_column`` is ``None``
    while ``target_column`` names the FK column on it.
    """

    name: str
    table: str
    source_column: str | None
    target_column: str


def _fk_for(db: Database, table: str, column: str) -> ForeignKey:
    for fk in db.foreign_keys_of(table):
        if fk.column == column:
            return fk
    raise ForeignKeyError(f"no foreign key declared on {table}.{column}")


def build_hin(
    db: Database,
    entity_tables: Sequence[str],
    links: Sequence[LinkSpec],
) -> HIN:
    """Materialize a HIN with one node type per entity table.

    Node ids within a type follow primary-key order of the entity table;
    names are the primary-key values.  Each :class:`LinkSpec` contributes
    one relation; multiple rows inducing the same pair accumulate weight.
    """
    for t in entity_tables:
        table = db.table(t)
        if table.primary_key is None:
            raise RelationalError(
                f"entity table {t!r} must have a primary key"
            )
    key_index: dict[str, dict] = {}
    counts: dict[str, int] = {}
    names: dict[str, list] = {}
    for t in entity_tables:
        table = db.table(t)
        keys = table.column(table.primary_key)
        key_index[t] = {k: i for i, k in enumerate(keys)}
        counts[t] = len(keys)
        names[t] = keys

    relations: list[Relation] = []
    matrices: dict[str, sp.csr_matrix] = {}
    for spec in links:
        table = db.table(spec.table)
        if spec.source_column is None:
            # Direct FK: the owning table is the source entity.
            if spec.table not in key_index:
                raise RelationalError(
                    f"link {spec.name!r}: table {spec.table!r} is not an entity table"
                )
            fk = _fk_for(db, spec.table, spec.target_column)
            if fk.ref_table not in key_index:
                raise RelationalError(
                    f"link {spec.name!r}: referenced table {fk.ref_table!r} "
                    f"is not an entity table"
                )
            src_type, dst_type = spec.table, fk.ref_table
            src_keys = table.column(table.primary_key)
            dst_keys = table.column(spec.target_column)
            pairs = [
                (key_index[src_type][s], key_index[dst_type][d])
                for s, d in zip(src_keys, dst_keys)
                if d is not None
            ]
        else:
            fk_src = _fk_for(db, spec.table, spec.source_column)
            fk_dst = _fk_for(db, spec.table, spec.target_column)
            for fk in (fk_src, fk_dst):
                if fk.ref_table not in key_index:
                    raise RelationalError(
                        f"link {spec.name!r}: referenced table {fk.ref_table!r} "
                        f"is not an entity table"
                    )
            src_type, dst_type = fk_src.ref_table, fk_dst.ref_table
            src_vals = table.column(spec.source_column)
            dst_vals = table.column(spec.target_column)
            pairs = [
                (key_index[src_type][s], key_index[dst_type][d])
                for s, d in zip(src_vals, dst_vals)
                if s is not None and d is not None
            ]
        relations.append(Relation(spec.name, src_type, dst_type))
        rows = [p[0] for p in pairs]
        cols = [p[1] for p in pairs]
        m = sp.coo_matrix(
            ([1.0] * len(pairs), (rows, cols)),
            shape=(counts[src_type], counts[dst_type]),
        ).tocsr()
        m.sum_duplicates()
        matrices[spec.name] = m

    schema = NetworkSchema(list(entity_tables), relations)
    return HIN(schema, counts, matrices, node_names=names)


def infer_hin(db: Database) -> HIN:
    """Heuristically derive a HIN from the foreign-key graph of *db*.

    Entity tables: tables with a primary key that are referenced by at
    least one foreign key, plus tables holding fewer than two foreign keys
    (pure junctions are link carriers, not entities).  Every junction table
    (>= 2 FKs into entity tables) induces one relation per FK pair; every
    direct FK between entity tables induces one relation.
    """
    referenced = {fk.ref_table for fk in db.foreign_keys}
    entities = [
        name
        for name in db.table_names
        if db.table(name).primary_key is not None
        and (name in referenced or len(db.foreign_keys_of(name)) < 2)
    ]
    entity_set = set(entities)
    links: list[LinkSpec] = []
    for name in db.table_names:
        fks = [fk for fk in db.foreign_keys_of(name) if fk.ref_table in entity_set]
        if name in entity_set:
            for fk in fks:
                links.append(
                    LinkSpec(
                        name=f"{name}_{fk.column}",
                        table=name,
                        source_column=None,
                        target_column=fk.column,
                    )
                )
        elif len(fks) >= 2:
            for i in range(len(fks)):
                for j in range(i + 1, len(fks)):
                    links.append(
                        LinkSpec(
                            name=f"{name}_{fks[i].column}_{fks[j].column}",
                            table=name,
                            source_column=fks[i].column,
                            target_column=fks[j].column,
                        )
                    )
    if not entities:
        raise RelationalError(
            "could not infer any entity tables (no primary keys referenced)"
        )
    return build_hin(db, entities, links)
