"""A miniature in-memory relational table.

This is the substrate for the tutorial's premise — "objects in databases
are inter-related via foreign keys" — and for the cross-relational
algorithms (CrossMine, CrossClus) that walk join paths.  It is deliberately
small: named columns, list-of-tuples rows, a primary key, and the handful
of relational operations the algorithms need (selection, projection,
group-by, equi-join).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.exceptions import ColumnNotFoundError, RelationalError

__all__ = ["Table"]


class Table:
    """An in-memory relation with named columns and an optional primary key.

    Parameters
    ----------
    name:
        Table name (unique within a :class:`~repro.relational.Database`).
    columns:
        Ordered column names.
    rows:
        Iterable of row tuples/lists, all of ``len(columns)``.
    primary_key:
        Optional column whose values must be unique and non-``None``.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence] = (),
        *,
        primary_key: str | None = None,
    ):
        if not name or not isinstance(name, str):
            raise RelationalError("table name must be a non-empty string")
        self.name = name
        cols = list(columns)
        if len(set(cols)) != len(cols):
            raise RelationalError(f"table {name!r} has duplicate columns")
        if not cols:
            raise RelationalError(f"table {name!r} must have at least one column")
        self.columns = cols
        self._col_index = {c: i for i, c in enumerate(cols)}
        self._rows: list[tuple] = []
        for row in rows:
            self._append(tuple(row))
        self.primary_key = None
        if primary_key is not None:
            self.set_primary_key(primary_key)

    # ------------------------------------------------------------------
    def _append(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise RelationalError(
                f"table {self.name!r}: row has {len(row)} values for "
                f"{len(self.columns)} columns"
            )
        self._rows.append(row)

    def insert(self, row: Sequence) -> None:
        """Append a row, enforcing primary-key uniqueness if one is set."""
        row = tuple(row)
        if self.primary_key is not None:
            key = row[self._col_index[self.primary_key]]
            if key is None:
                raise RelationalError(
                    f"table {self.name!r}: primary key {self.primary_key!r} is None"
                )
            if key in self._pk_index:
                raise RelationalError(
                    f"table {self.name!r}: duplicate primary key {key!r}"
                )
            self._append(row)
            self._pk_index[key] = len(self._rows) - 1
        else:
            self._append(row)

    def set_primary_key(self, column: str) -> None:
        """Declare *column* as the primary key (validates existing rows)."""
        idx = self.column_index(column)
        seen: dict = {}
        for i, row in enumerate(self._rows):
            key = row[idx]
            if key is None:
                raise RelationalError(
                    f"table {self.name!r}: NULL primary key in row {i}"
                )
            if key in seen:
                raise RelationalError(
                    f"table {self.name!r}: duplicate primary key {key!r}"
                )
            seen[key] = i
        self.primary_key = column
        self._pk_index = seen

    # ------------------------------------------------------------------
    def column_index(self, column: str) -> int:
        """Positional index of *column*."""
        try:
            return self._col_index[column]
        except KeyError:
            raise ColumnNotFoundError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def column(self, column: str) -> list:
        """All values of *column*, in row order."""
        idx = self.column_index(column)
        return [row[idx] for row in self._rows]

    def distinct(self, column: str) -> list:
        """Distinct values of *column*, in first-appearance order."""
        idx = self.column_index(column)
        seen: dict = {}
        for row in self._rows:
            seen.setdefault(row[idx], None)
        return list(seen)

    @property
    def rows(self) -> list[tuple]:
        """All rows (copy of the list; row tuples are immutable)."""
        return list(self._rows)

    def row_by_key(self, key) -> tuple:
        """Row whose primary key equals *key*."""
        if self.primary_key is None:
            raise RelationalError(f"table {self.name!r} has no primary key")
        try:
            return self._rows[self._pk_index[key]]
        except KeyError:
            raise RelationalError(
                f"table {self.name!r}: no row with key {key!r}"
            ) from None

    def has_key(self, key) -> bool:
        """True when a row with primary key *key* exists."""
        if self.primary_key is None:
            raise RelationalError(f"table {self.name!r} has no primary key")
        return key in self._pk_index

    def value(self, key, column: str):
        """Value of *column* in the row keyed by *key*."""
        return self.row_by_key(key)[self.column_index(column)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[dict], bool]) -> "Table":
        """Rows for which ``predicate(row_as_dict)`` is true, as a new table."""
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(self.columns, row)))
        ]
        return Table(self.name, self.columns, kept, primary_key=self.primary_key)

    def project(self, columns: Sequence[str], *, name: str | None = None) -> "Table":
        """New table with only *columns* (duplicates retained)."""
        idxs = [self.column_index(c) for c in columns]
        rows = [tuple(row[i] for i in idxs) for row in self._rows]
        return Table(name or self.name, list(columns), rows)

    def group_by(self, column: str) -> dict:
        """Mapping ``value -> list of row dicts`` grouped on *column*."""
        idx = self.column_index(column)
        groups: dict = {}
        for row in self._rows:
            groups.setdefault(row[idx], []).append(dict(zip(self.columns, row)))
        return groups

    def join(
        self,
        other: "Table",
        self_column: str,
        other_column: str,
        *,
        name: str | None = None,
    ) -> "Table":
        """Inner equi-join; joined columns are prefixed ``table.column``."""
        left_idx = self.column_index(self_column)
        right_idx = other.column_index(other_column)
        buckets: dict = {}
        for row in other._rows:
            buckets.setdefault(row[right_idx], []).append(row)
        out_columns = [f"{self.name}.{c}" for c in self.columns] + [
            f"{other.name}.{c}" for c in other.columns
        ]
        out_rows: list[tuple] = []
        for row in self._rows:
            for match in buckets.get(row[left_idx], ()):
                out_rows.append(tuple(row) + tuple(match))
        return Table(name or f"{self.name}_join_{other.name}", out_columns, out_rows)

    def to_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self._rows]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={self.columns!r}, "
            f"n_rows={len(self._rows)}, primary_key={self.primary_key!r})"
        )
