"""A miniature relational database: tables plus declared foreign keys.

The foreign-key graph is what the tutorial calls the hidden information
network inside every database; :mod:`repro.relational.builders` walks it to
materialize a :class:`~repro.networks.HIN`, and
:mod:`repro.classification.crossmine` walks it to propagate tuple ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ForeignKeyError, RelationalError, TableNotFoundError
from repro.relational.table import Table

__all__ = ["ForeignKey", "Database"]


@dataclass(frozen=True)
class ForeignKey:
    """Declaration that ``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


class Database:
    """A named collection of :class:`Table` objects with foreign keys.

    Example
    -------
    >>> db = Database("university")
    >>> db.add_table(Table("dept", ["id", "name"], [(1, "CS")], primary_key="id"))
    >>> db.add_table(Table("prof", ["id", "dept_id"], [(10, 1)], primary_key="id"))
    >>> db.add_foreign_key("prof", "dept_id", "dept", "id")
    >>> [str(fk) for fk in db.foreign_keys_of("prof")]
    ['prof.dept_id -> dept.id']
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register *table*; its name must be unused."""
        if table.name in self._tables:
            raise RelationalError(f"database already has a table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table named {name!r}") from None

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> None:
        """Declare and validate a foreign key.

        Validation requires the referenced column to be the referenced
        table's primary key and every non-NULL value in ``table.column`` to
        resolve — broken references are exactly the data-quality problem
        the tutorial's Section 3 methods exist to fix, but a *declared* key
        must hold for the network construction to be well-defined.
        """
        src = self.table(table)
        ref = self.table(ref_table)
        src.column_index(column)
        if ref.primary_key != ref_column:
            raise ForeignKeyError(
                f"referenced column {ref_table}.{ref_column} must be the "
                f"primary key of {ref_table!r} (which is {ref.primary_key!r})"
            )
        for i, value in enumerate(src.column(column)):
            if value is not None and not ref.has_key(value):
                raise ForeignKeyError(
                    f"{table}.{column} row {i} references missing "
                    f"{ref_table}.{ref_column} = {value!r}"
                )
        fk = ForeignKey(table, column, ref_table, ref_column)
        if fk in self._foreign_keys:
            raise ForeignKeyError(f"duplicate foreign key {fk}")
        self._foreign_keys.append(fk)

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        """Foreign keys declared *on* (outgoing from) *table*."""
        self.table(table)
        return [fk for fk in self._foreign_keys if fk.table == table]

    def foreign_keys_into(self, table: str) -> list[ForeignKey]:
        """Foreign keys referencing (incoming to) *table*."""
        self.table(table)
        return [fk for fk in self._foreign_keys if fk.ref_table == table]

    def joinable_tables(self, table: str) -> list[str]:
        """Tables one foreign-key hop away from *table* (either direction)."""
        out: list[str] = []
        for fk in self.foreign_keys_of(table):
            if fk.ref_table not in out:
                out.append(fk.ref_table)
        for fk in self.foreign_keys_into(table):
            if fk.table not in out:
                out.append(fk.table)
        return out

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={self.table_names!r}, "
            f"n_foreign_keys={len(self._foreign_keys)})"
        )
