"""Miniature relational-database substrate and database→HIN builders."""

from repro.relational.builders import LinkSpec, build_hin, infer_hin
from repro.relational.database import Database, ForeignKey
from repro.relational.table import Table

__all__ = [
    "Table",
    "Database",
    "ForeignKey",
    "LinkSpec",
    "build_hin",
    "infer_hin",
]
