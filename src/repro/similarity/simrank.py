"""SimRank — structural-context similarity (Jeh & Widom, KDD'02).

Tutorial §2(b)iii.  Two objects are similar when they are referenced by
similar objects:

    s(a, b) = C / (|I(a)||I(b)|) * Σ_{i∈I(a)} Σ_{j∈I(b)} s(i, j)

computed here in matrix form, ``S ← C · Pᵀ S P`` with the diagonal pinned
to 1, where ``P`` is the column-normalized adjacency.  The bipartite
variant (used by LinkClus and object reconciliation) alternates the same
update across the two sides of a relation matrix.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning
from repro.networks.graph import Graph
from repro.query.estimator import Estimator
from repro.query.results import TopKResult
from repro.utils.convergence import ConvergenceInfo
from repro.utils.sparse import column_normalize, row_normalize, to_csr
from repro.utils.validation import check_probability

__all__ = ["SimRank", "simrank", "simrank_bipartite"]


def simrank(
    graph: Graph,
    *,
    c: float = 0.8,
    max_iter: int = 100,
    tol: float = 1e-4,
) -> tuple[np.ndarray, ConvergenceInfo]:
    """All-pairs SimRank similarity matrix of a homogeneous graph.

    Parameters
    ----------
    graph:
        For directed graphs, in-neighbours define the context (the
        original paper's convention); for undirected graphs, neighbours.
    c:
        Decay constant in (0, 1); the classical value is 0.8.
    max_iter, tol:
        Iteration stops when the max-norm update falls below *tol*
        (SimRank converges geometrically at rate *c*).

    Returns
    -------
    (S, info):
        ``S`` is dense ``(n, n)``, symmetric, with unit diagonal and
        values in [0, 1].  Nodes without in-neighbours have similarity 0
        to everything (except themselves).

    Notes
    -----
    Dense ``O(n^2)`` memory: intended for the side of a HIN being
    clustered (thousands of nodes), not the full web graph — LinkClus
    (:mod:`repro.clustering.linkclus`) is the scalable alternative, which
    is exactly the point the tutorial makes in §4(a).
    """
    check_probability(c, "c")
    n = graph.n_nodes
    if n == 0:
        return np.zeros((0, 0)), ConvergenceInfo(True, 0, 0.0, tol)
    p = column_normalize(graph.adjacency)  # P[i, j]: weight of i in I(j)
    s = np.eye(n)
    history: list[float] = []
    for iteration in range(max_iter):
        s_new = c * (p.T.dot(p.T.dot(s).T))
        np.fill_diagonal(s_new, 1.0)
        residual = float(np.abs(s_new - s).max())
        history.append(residual)
        s = s_new
        if residual <= tol:
            return s, ConvergenceInfo(True, iteration + 1, residual, tol, history)
    warnings.warn(
        f"simrank did not converge in {max_iter} iterations",
        ConvergenceWarning,
        stacklevel=2,
    )
    return s, ConvergenceInfo(False, max_iter, history[-1], tol, history)


def simrank_bipartite(
    relation,
    *,
    c: float = 0.8,
    max_iter: int = 100,
    tol: float = 1e-4,
) -> tuple[np.ndarray, np.ndarray, ConvergenceInfo]:
    """Bipartite SimRank over one relation matrix (rows = A, columns = B).

    Alternates the SimRank update across the two sides::

        S_A ← C · P_BA S_B P_AB   (diag pinned to 1)
        S_B ← C · P_AB S_A P_BA   (diag pinned to 1)

    Returns ``(S_A, S_B, info)``.  This is the "similar conferences share
    similar authors" recursion the tutorial uses to motivate link-based
    clustering.

    Parameters
    ----------
    relation:
        The ``(n_A, n_B)`` biadjacency matrix (anything
        :func:`~repro.utils.sparse.to_csr` accepts).
    c:
        Decay constant in (0, 1); the classical value is 0.8.
    max_iter, tol:
        Iteration stops when the max-norm update over both sides falls
        below *tol*.
    """
    check_probability(c, "c")
    w = to_csr(relation)
    n_a, n_b = w.shape
    if n_a == 0 or n_b == 0:
        info = ConvergenceInfo(True, 0, 0.0, tol)
        return np.eye(n_a), np.eye(n_b), info
    # q_a[i, :] = A_i's distribution over its B-neighbours (rows sum to 1);
    # S_A = C * Q_A S_B Q_Aᵀ and symmetrically for S_B.
    q_a = row_normalize(w)                # (n_a, n_b)
    q_b = row_normalize(w.T.tocsr())      # (n_b, n_a)
    s_a = np.eye(n_a)
    s_b = np.eye(n_b)
    history: list[float] = []
    for iteration in range(max_iter):
        s_a_new = c * q_a.dot(q_a.dot(s_b.T).T)
        np.fill_diagonal(s_a_new, 1.0)
        s_b_new = c * q_b.dot(q_b.dot(s_a_new.T).T)
        np.fill_diagonal(s_b_new, 1.0)
        residual = float(
            max(np.abs(s_a_new - s_a).max(), np.abs(s_b_new - s_b).max())
        )
        history.append(residual)
        s_a, s_b = s_a_new, s_b_new
        if residual <= tol:
            return s_a, s_b, ConvergenceInfo(
                True, iteration + 1, residual, tol, history
            )
    warnings.warn(
        f"bipartite simrank did not converge in {max_iter} iterations",
        ConvergenceWarning,
        stacklevel=2,
    )
    return s_a, s_b, ConvergenceInfo(False, max_iter, history[-1], tol, history)


class SimRank(Estimator):
    """SimRank as a reusable index (estimator-protocol view of
    :func:`simrank`).

    Fits the all-pairs matrix once and then answers pair/top-k queries;
    ``hin.query().similar(obj, path, measure="simrank")`` uses this over
    the meta-path's homogeneous projection.

    Parameters
    ----------
    c:
        Decay constant in (0, 1); the classical value is 0.8.
    max_iter, tol:
        Stopping rule forwarded to :func:`simrank`.

    Example
    -------
    >>> sr = SimRank().fit(graph)                     # doctest: +SKIP
    >>> sr.top_k("SIGMOD", 5)                         # doctest: +SKIP
    """

    def __init__(self, *, c: float = 0.8, max_iter: int = 100, tol: float = 1e-4):
        self.c = float(c)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.matrix_: np.ndarray | None = None
        self.convergence_: ConvergenceInfo | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "SimRank":
        """Compute the all-pairs SimRank matrix of *graph*."""
        self.matrix_, self.convergence_ = simrank(
            graph, c=self.c, max_iter=self.max_iter, tol=self.tol
        )
        self._graph = graph
        return self

    def _is_fitted(self) -> bool:
        return self.matrix_ is not None

    def _resolve(self, obj) -> int:
        if isinstance(obj, (int, np.integer)):
            return int(obj)
        return self._graph.index_of(obj)

    def _name(self, index: int):
        return self._graph.name_of(index)

    def similarity(self, x, y) -> float:
        """SimRank score of one node pair (indices or names)."""
        self._check_fitted()
        return float(self.matrix_[self._resolve(x), self._resolve(y)])

    def top_k(self, x, k: int, *, exclude_self: bool = True) -> TopKResult:
        """Top-*k* most SimRank-similar nodes to *x*."""
        self._check_fitted()
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        i = self._resolve(x)
        scores = self.matrix_[i]
        need = k + 1 if exclude_self else k
        order = np.argsort(-scores, kind="stable")[: min(need, scores.size)]
        pairs = [
            (self._name(int(j)), float(scores[j]))
            for j in order
            if not (exclude_self and int(j) == i)
        ][:k]
        return TopKResult(
            pairs, query=self._name(i), measure="simrank"
        )
