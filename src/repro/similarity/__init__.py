"""Similarity measures: SimRank, meta-path measures, and PathSim top-k search.

The meta-path family (PathSim and its comparison measures) is served by
the network's shared :class:`~repro.engine.MetaPathEngine`, so sweeping
several measures — or fitting several indices — over the same paths
materializes each commuting matrix once.  SimRank is graph-based and
independent of the engine.
"""

from repro.similarity.metapath import (
    pairwise_random_walk_matrix,
    path_constrained_random_walk,
    path_count_matrix,
    random_walk_matrix,
)
from repro.similarity.pathsim import PathSim, pathsim_matrix
from repro.similarity.simrank import SimRank, simrank, simrank_bipartite

__all__ = [
    "SimRank",
    "simrank",
    "simrank_bipartite",
    "PathSim",
    "pathsim_matrix",
    "path_count_matrix",
    "random_walk_matrix",
    "pairwise_random_walk_matrix",
    "path_constrained_random_walk",
]
