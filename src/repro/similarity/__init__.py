"""Similarity measures: SimRank, meta-path measures, and PathSim top-k search."""

from repro.similarity.metapath import (
    pairwise_random_walk_matrix,
    path_constrained_random_walk,
    path_count_matrix,
    random_walk_matrix,
)
from repro.similarity.pathsim import PathSim, pathsim_matrix
from repro.similarity.simrank import simrank, simrank_bipartite

__all__ = [
    "simrank",
    "simrank_bipartite",
    "PathSim",
    "pathsim_matrix",
    "path_count_matrix",
    "random_walk_matrix",
    "pairwise_random_walk_matrix",
    "path_constrained_random_walk",
]
