"""Meta-path-based relatedness measures (PathSim's comparison family).

The PathSim work (tutorial §7(b)) compares four ways of turning a
meta-path commuting matrix ``M`` into a similarity:

* **path count** — ``M[x, y]`` raw;
* **random walk (RW)** — ``M[x, y] / Σ_y M[x, y]`` (asymmetric, favours
  highly visible targets);
* **pairwise random walk (PRW)** — for a round-trip path ``P = (P₁ P₂)``,
  the probability that two walkers starting at *x* and *y* meet in the
  middle;
* **PathSim** — the normalized measure in :mod:`repro.similarity.pathsim`.

All helpers take the HIN plus a path spec, so benchmark code can sweep
measures uniformly.  Commuting matrices and half-path products come from
the network's shared :class:`~repro.engine.MetaPathEngine`, so sweeping
several measures over the same path materializes each product once; pass
``engine=`` to use an isolated cache instead.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.exceptions import MetaPathError
from repro.networks.hin import HIN
from repro.networks.schema import as_metapath
from repro.utils.sparse import row_normalize

__all__ = [
    "path_count_matrix",
    "random_walk_matrix",
    "pairwise_random_walk_matrix",
    "path_constrained_random_walk",
]


def path_count_matrix(hin: HIN, path, *, engine=None) -> sp.csr_matrix:
    """Raw path-instance counts ``M_P`` (the engine's cached commuting matrix).

    Parameters
    ----------
    hin:
        The network to traverse.
    path:
        Any meta-path spelling the DSL accepts (string, type list,
        :class:`~repro.networks.schema.MetaPath`).
    engine:
        Override the network's shared engine (isolated cache); by
        default ``hin.engine()`` is used.
    """
    engine = engine if engine is not None else hin.engine()
    return engine.commuting_matrix(path)


def random_walk_matrix(hin: HIN, path, *, engine=None) -> sp.csr_matrix:
    """Row-stochastic walk probabilities along the meta-path.

    ``RW[x, y]`` is the probability that a random walker constrained to
    follow *path* from *x* ends at *y*.  Asymmetric: popular objects
    attract probability mass regardless of the source's perspective —
    exactly the bias PathSim was designed to remove.

    Parameters
    ----------
    hin:
        The network to traverse.
    path:
        Any meta-path spelling the DSL accepts.
    engine:
        Override the network's shared engine; defaults to ``hin.engine()``.
    """
    engine = engine if engine is not None else hin.engine()
    return row_normalize(engine.commuting_matrix(path))


def path_constrained_random_walk(hin: HIN, path) -> sp.csr_matrix:
    """PCRW: step-wise normalized walk probabilities along the meta-path.

    Unlike :func:`random_walk_matrix` (which normalizes the *final*
    commuting matrix), PCRW row-normalizes **every relation step**, so the
    result is the exact probability of a random walker that picks a
    uniform typed neighbour at each hop — the measure used by
    path-constrained relational retrieval (Lao & Cohen), one of PathSim's
    comparison points.

    Parameters
    ----------
    hin:
        The network to traverse.
    path:
        Any meta-path spelling the DSL accepts.  Step-normalized
        products are path-specific, so they bypass the engine's cache.
    """
    product: sp.csr_matrix | None = None
    for m in hin.step_matrices(as_metapath(hin, path)):
        step = row_normalize(m)
        product = step if product is None else product.dot(step)
    return product.tocsr()


def pairwise_random_walk_matrix(hin: HIN, path, *, engine=None) -> sp.csr_matrix:
    """Pairwise random walk: both endpoints walk half the path and meet.

    Requires an even-length path; splits it as ``P = (P₁, P₂)`` at the
    midpoint and returns ``PRW[x, y] = Σ_m RW₁[x, m] · RW₂ᵀ[m, y]`` where
    both halves are row-normalized from their own endpoint.  The two
    un-normalized half products are engine materializations, shared with
    any PathSim index on the same path.

    Parameters
    ----------
    hin:
        The network to traverse.
    path:
        Any even-length meta-path spelling (``MetaPathError`` otherwise).
    engine:
        Override the network's shared engine; defaults to ``hin.engine()``.
    """
    engine = engine if engine is not None else hin.engine()
    mp = engine.path(path)
    if mp.length % 2 != 0:
        raise MetaPathError(
            f"pairwise random walk needs an even-length path, got length {mp.length}"
        )
    half = mp.length // 2
    first = engine.commuting_matrix(mp.prefix(half))
    # Second half traversed backwards from the path's target endpoint —
    # i.e. the first half of the reversed path.
    second = engine.commuting_matrix(mp.reversed().prefix(half))
    rw1 = row_normalize(first)
    rw2 = row_normalize(second)
    return rw1.dot(rw2.T.tocsr()).tocsr()
