"""Meta-path-based relatedness measures (PathSim's comparison family).

The PathSim work (tutorial §7(b)) compares four ways of turning a
meta-path commuting matrix ``M`` into a similarity:

* **path count** — ``M[x, y]`` raw;
* **random walk (RW)** — ``M[x, y] / Σ_y M[x, y]`` (asymmetric, favours
  highly visible targets);
* **pairwise random walk (PRW)** — for a round-trip path ``P = (P₁ P₂)``,
  the probability that two walkers starting at *x* and *y* meet in the
  middle;
* **PathSim** — the normalized measure in :mod:`repro.similarity.pathsim`.

All helpers take the HIN plus a path spec, so benchmark code can sweep
measures uniformly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import MetaPathError
from repro.networks.hin import HIN
from repro.utils.sparse import row_normalize

__all__ = [
    "path_count_matrix",
    "random_walk_matrix",
    "pairwise_random_walk_matrix",
    "path_constrained_random_walk",
]


def path_count_matrix(hin: HIN, path) -> sp.csr_matrix:
    """Raw path-instance counts ``M_P`` (alias of ``hin.commuting_matrix``)."""
    return hin.commuting_matrix(path)


def random_walk_matrix(hin: HIN, path) -> sp.csr_matrix:
    """Row-stochastic walk probabilities along the meta-path.

    ``RW[x, y]`` is the probability that a random walker constrained to
    follow *path* from *x* ends at *y*.  Asymmetric: popular objects
    attract probability mass regardless of the source's perspective —
    exactly the bias PathSim was designed to remove.
    """
    return row_normalize(hin.commuting_matrix(path))


def path_constrained_random_walk(hin: HIN, path) -> sp.csr_matrix:
    """PCRW: step-wise normalized walk probabilities along the meta-path.

    Unlike :func:`random_walk_matrix` (which normalizes the *final*
    commuting matrix), PCRW row-normalizes **every relation step**, so the
    result is the exact probability of a random walker that picks a
    uniform typed neighbour at each hop — the measure used by
    path-constrained relational retrieval (Lao & Cohen), one of PathSim's
    comparison points.
    """
    mp = hin.meta_path(path)
    product: sp.csr_matrix | None = None
    for rel, forward in mp.steps():
        m = hin.relation_matrix(rel.name)
        step = row_normalize(m if forward else m.T.tocsr())
        product = step if product is None else product.dot(step)
    return product.tocsr()


def pairwise_random_walk_matrix(hin: HIN, path) -> sp.csr_matrix:
    """Pairwise random walk: both endpoints walk half the path and meet.

    Requires an even-length path; splits it as ``P = (P₁, P₂)`` at the
    midpoint and returns ``PRW[x, y] = Σ_m RW₁[x, m] · RW₂ᵀ[m, y]`` where
    both halves are row-normalized from their own endpoint.
    """
    mp = hin.meta_path(path)
    if mp.length % 2 != 0:
        raise MetaPathError(
            f"pairwise random walk needs an even-length path, got length {mp.length}"
        )
    steps = mp.steps()
    half = len(steps) // 2

    first = None
    for rel, forward in steps[:half]:
        m = hin.relation_matrix(rel.name)
        step = m if forward else m.T.tocsr()
        first = step if first is None else first.dot(step)
    second = None
    # Second half traversed backwards from the path's target endpoint.
    for rel, forward in reversed(steps[half:]):
        m = hin.relation_matrix(rel.name)
        step = m.T.tocsr() if forward else m
        second = step if second is None else second.dot(step)
    rw1 = row_normalize(first)
    rw2 = row_normalize(second)
    return rw1.dot(rw2.T.tocsr()).tocsr()
