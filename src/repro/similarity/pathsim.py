"""PathSim — meta-path-based top-k similarity search (tutorial §7(b)).

PathSim measures how two *peers* relate under a symmetric meta-path P:

    s(x, y) = 2 · M[x, y] / (M[x, x] + M[y, y])

where ``M`` is the commuting matrix of P.  Unlike raw path counts or
random-walk measures, the normalization by self-visibility stops hugely
prolific objects (e.g. mega-conferences) from dominating every ranking —
the property the PathSim case study ("who is similar to SIGMOD?")
demonstrates.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import MetaPathError, NotFittedError
from repro.networks.hin import HIN

__all__ = ["PathSim", "pathsim_matrix"]


def pathsim_matrix(hin: HIN, path) -> np.ndarray:
    """Dense all-pairs PathSim matrix for a symmetric meta-path.

    Values are in [0, 1] with unit diagonal for every object that has at
    least one path instance to itself; objects with zero self-count (no
    participation in the path) have similarity 0 everywhere, diagonal
    included — they are invisible under this meta-path.
    """
    mp = hin.meta_path(path)
    if not mp.is_symmetric():
        raise MetaPathError(
            f"PathSim requires a symmetric meta-path, got {mp}"
        )
    m = hin.commuting_matrix(mp)
    diag = m.diagonal()
    denom = diag[:, None] + diag[None, :]
    dense = m.toarray()
    out = np.divide(
        2.0 * dense,
        denom,
        out=np.zeros_like(dense),
        where=denom != 0,
    )
    return out


class PathSim:
    """Reusable PathSim index over one HIN and one symmetric meta-path.

    Computes the commuting matrix once at :meth:`fit`; queries then run on
    the sparse structure, so repeated top-k searches stay cheap.

    Example
    -------
    >>> ps = PathSim("venue-paper-author-paper-venue")   # doctest: +SKIP
    >>> ps.fit(dblp.hin)                                 # doctest: +SKIP
    >>> ps.top_k("SIGMOD", 5)                            # doctest: +SKIP
    """

    def __init__(self, path):
        self.path = path
        self._m: sp.csr_matrix | None = None
        self._diag: np.ndarray | None = None
        self._hin: HIN | None = None
        self._type: str | None = None

    def fit(self, hin: HIN) -> "PathSim":
        """Compute and cache the commuting matrix of the meta-path."""
        mp = hin.meta_path(self.path)
        if not mp.is_symmetric():
            raise MetaPathError(f"PathSim requires a symmetric meta-path, got {mp}")
        self._m = hin.commuting_matrix(mp)
        self._diag = self._m.diagonal()
        self._hin = hin
        self._type = mp.source_type
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self._m is None:
            raise NotFittedError("call fit(hin) before querying PathSim")

    def _resolve(self, obj) -> int:
        self._check_fitted()
        if isinstance(obj, (int, np.integer)):
            return int(obj)
        return self._hin.index_of(self._type, obj)

    @property
    def object_type(self) -> str:
        """The node type this index ranks (source/target of the path)."""
        self._check_fitted()
        return self._type

    def similarity(self, x, y) -> float:
        """PathSim score between two objects (indices or names)."""
        i, j = self._resolve(x), self._resolve(y)
        denom = self._diag[i] + self._diag[j]
        if denom == 0:
            return 0.0
        return float(2.0 * self._m[i, j] / denom)

    def similarities_from(self, x) -> np.ndarray:
        """PathSim scores from *x* to every object of the type."""
        i = self._resolve(x)
        row = np.asarray(self._m.getrow(i).todense()).ravel()
        denom = self._diag[i] + self._diag
        return np.divide(
            2.0 * row, denom, out=np.zeros_like(row, dtype=np.float64),
            where=denom != 0,
        )

    def top_k(self, x, k: int, *, exclude_self: bool = True) -> list[tuple]:
        """Top-*k* most similar objects to *x*.

        Returns ``(name_or_index, score)`` pairs, names when the type has
        them.  Candidates are restricted to objects sharing at least one
        path instance with *x* (others score 0 and are omitted unless
        needed to fill *k*).
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        i = self._resolve(x)
        scores = self.similarities_from(i)
        order = np.argsort(-scores, kind="stable")
        out: list[tuple] = []
        for j in order:
            if exclude_self and j == i:
                continue
            out.append((self._hin.name_of(self._type, int(j)), float(scores[j])))
            if len(out) == k:
                break
        return out

    def matrix(self) -> np.ndarray:
        """Dense all-pairs PathSim matrix (see :func:`pathsim_matrix`)."""
        self._check_fitted()
        denom = self._diag[:, None] + self._diag[None, :]
        dense = self._m.toarray()
        return np.divide(
            2.0 * dense, denom, out=np.zeros_like(dense), where=denom != 0
        )
