"""PathSim — meta-path-based top-k similarity search (tutorial §7(b)).

PathSim measures how two *peers* relate under a symmetric meta-path P:

    s(x, y) = 2 · M[x, y] / (M[x, x] + M[y, y])

where ``M`` is the commuting matrix of P.  Unlike raw path counts or
random-walk measures, the normalization by self-visibility stops hugely
prolific objects (e.g. mega-conferences) from dominating every ranking —
the property the PathSim case study ("who is similar to SIGMOD?")
demonstrates.

Queries are served by the network's shared
:class:`~repro.engine.MetaPathEngine` (``hin.engine()``): the symmetric
half-product ``W`` (``M = W W^T``) is materialized once into the engine's
LRU cache, single-source queries slice one sparse row of ``W`` instead of
building the n×n matrix, and every other consumer of the same meta-path
(or of a shared prefix) reuses the materialization.
"""

from __future__ import annotations

import numpy as np

from repro.networks.hin import HIN
from repro.query.estimator import Estimator
from repro.query.results import TopKResult

__all__ = ["PathSim", "pathsim_matrix"]


def pathsim_matrix(hin: HIN, path, *, engine=None) -> np.ndarray:
    """Dense all-pairs PathSim matrix for a symmetric meta-path.

    Values are in [0, 1] with unit diagonal for every object that has at
    least one path instance to itself; objects with zero self-count (no
    participation in the path) have similarity 0 everywhere, diagonal
    included — they are invisible under this meta-path.

    This is the full-materialization entry point; for serving queries use
    :class:`PathSim` or the engine's row/top-k methods directly.

    Parameters
    ----------
    hin:
        The network to measure.
    path:
        Any *symmetric* meta-path spelling the DSL accepts.
    engine:
        Override the network's shared engine; defaults to ``hin.engine()``.
    """
    engine = engine if engine is not None else hin.engine()
    return engine.pathsim_matrix(path)


class PathSim(Estimator):
    """Reusable PathSim index over one HIN and one symmetric meta-path.

    A thin, sklearn-style view over the network's shared
    :class:`~repro.engine.MetaPathEngine`: :meth:`fit` validates the path
    and materializes its symmetric decomposition into the engine's cache;
    queries then run on sparse row slices, so repeated top-k searches stay
    cheap — and two ``PathSim`` objects on the same HIN share the work.

    Parameters
    ----------
    path:
        The symmetric meta-path to index, in any DSL spelling; resolved
        and validated against the network at :meth:`fit` time.

    Example
    -------
    >>> ps = PathSim("venue-paper-author-paper-venue")   # doctest: +SKIP
    >>> ps.fit(dblp.hin)                                 # doctest: +SKIP
    >>> ps.top_k("SIGMOD", 5)                            # doctest: +SKIP
    """

    def __init__(self, path):
        self.path = path
        self._engine = None
        self._mp = None
        self._type: str | None = None

    def fit(self, hin: HIN, *, engine=None) -> "PathSim":
        """Validate the path and materialize its commuting-matrix parts.

        The path (set in ``__init__``) may be any spelling the DSL
        accepts — ``"A-P-V-P-A"``, a type list, or a ``MetaPath``.
        ``engine`` overrides the network's shared engine (useful for an
        isolated cache in tests); by default ``hin.engine()`` is used.
        """
        eng = engine if engine is not None else hin.engine()
        mp = eng.symmetric_path(self.path)
        eng.prewarm([mp])
        self._engine = eng
        self._mp = mp
        self._type = mp.source_type
        return self

    # ------------------------------------------------------------------
    def _is_fitted(self) -> bool:
        return self._engine is not None

    @property
    def object_type(self) -> str:
        """The node type this index ranks (source/target of the path)."""
        self._check_fitted()
        return self._type

    def similarity(self, x, y) -> float:
        """PathSim score between two objects (indices or names)."""
        self._check_fitted()
        return self._engine.pathsim(self._mp, x, y)

    def similarities_from(self, x) -> np.ndarray:
        """PathSim scores from *x* to every object of the type."""
        self._check_fitted()
        return self._engine.pathsim_row(self._mp, x)

    def top_k(self, x, k: int, *, exclude_self: bool = True) -> TopKResult:
        """Top-*k* most similar objects to *x*.

        Returns a :class:`~repro.query.results.TopKResult` of
        ``(name_or_index, score)`` pairs (a list subclass), names when
        the type has them.  Candidates are restricted to objects sharing
        at least one path instance with *x* (others score 0 and are
        omitted unless needed to fill *k*).
        """
        self._check_fitted()
        return self._engine.pathsim_top_k(
            self._mp, x, k, exclude_query=exclude_self
        )

    def top_k_batch(self, xs, k: int, *, exclude_self: bool = True) -> list[TopKResult]:
        """:meth:`top_k` for many queries via one sparse block product."""
        self._check_fitted()
        return self._engine.pathsim_top_k_batch(
            self._mp, xs, k, exclude_query=exclude_self
        )

    def matrix(self) -> np.ndarray:
        """Dense all-pairs PathSim matrix (see :func:`pathsim_matrix`)."""
        self._check_fitted()
        return self._engine.pathsim_matrix(self._mp)
