"""Data integration and validation by link analysis: object
reconciliation, DISTINCT object distinction, and TruthFinder veracity
analysis (tutorial §3)."""

from repro.integration.copydetect import (
    CopyAwareTruthFinder,
    estimate_source_dependence,
)
from repro.integration.distinct import Distinct
from repro.integration.reconciliation import (
    LinkReconciler,
    MatchResult,
    string_similarity,
)
from repro.integration.truthfinder import TruthFinder, majority_vote

__all__ = [
    "TruthFinder",
    "majority_vote",
    "CopyAwareTruthFinder",
    "estimate_source_dependence",
    "LinkReconciler",
    "MatchResult",
    "string_similarity",
    "Distinct",
]
