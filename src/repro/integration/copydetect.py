"""Truth discovery with copying detection (Dong, Berti-Équille &
Srivastava, VLDB'09 — tutorial reference [2]).

Vanilla TruthFinder treats sources as independent, so an army of copiers
replicating one bad source out-votes the honest minority (the limitation
E7 documents).  The VLDB'09 insight: **copiers reveal themselves by
sharing false values** — two independent sources agree on the truth for
many objects, but agreeing on the same *wrong* values is statistically
damning.

This module implements the laptop-scale version of that idea:

1. estimate pairwise source dependence from claim agreement combined
   with claimed-object coverage overlap (verbatim copiers score ≈ 1 on
   both; independent sources cannot, because they err and choose what to
   claim independently);
2. group dependent sources into copying cliques (union-find over pairs
   above the threshold) so each clique speaks with one voice;
3. run :class:`~repro.integration.truthfinder.TruthFinder` on the
   clique-collapsed claim set.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.integration.truthfinder import TruthFinder
from repro.utils.validation import check_probability

__all__ = ["estimate_source_dependence", "CopyAwareTruthFinder"]


def estimate_source_dependence(
    claims: Iterable[tuple],
    *,
    min_overlap: int = 3,
) -> dict[tuple, float]:
    """Pairwise dependence scores in [0, 1] for (near-)verbatim copying.

    For each source pair the score is ``agreement × coverage``, where
    *agreement* is the fraction of co-claimed objects with identical
    values and *coverage* is the Jaccard similarity of the two sources'
    claimed-object sets.  Verbatim copiers score ≈ 1 on both factors;
    independent sources — even highly accurate ones — diverge on
    coverage (they choose what to claim independently) and on the objects
    where either errs.  Pairs with fewer than *min_overlap* co-claimed
    objects are unscored.

    This is the laptop-scale substitute for the full Bayesian dependence
    model of Dong et al. (VLDB'09): it detects verbatim and near-verbatim
    copying, not partial/creative copying.  Note the inherent limit the
    paper proves: two *perfect* sources with identical coverage are
    indistinguishable from copiers, because only shared errors carry
    dependence evidence.
    """
    by_source: dict = {}
    for source, obj, value in claims:
        by_source.setdefault(source, {})[obj] = value

    sources = sorted(by_source)
    out: dict[tuple, float] = {}
    for i, s1 in enumerate(sources):
        claims1 = by_source[s1]
        for s2 in sources[i + 1 :]:
            claims2 = by_source[s2]
            common = set(claims1) & set(claims2)
            if len(common) < min_overlap:
                continue
            agreement = sum(
                1 for obj in common if claims1[obj] == claims2[obj]
            ) / len(common)
            union = len(set(claims1) | set(claims2))
            coverage = len(common) / union if union else 0.0
            score = agreement * coverage
            if score > 0:
                out[(s1, s2)] = score
    return out


class CopyAwareTruthFinder:
    """TruthFinder preceded by copy detection and source down-weighting.

    Parameters
    ----------
    dependence_threshold:
        Pairs scoring above this are considered copier pairs; the
        transitive closure forms copying cliques.  The default 0.9
        targets verbatim copying (agreement ≈ coverage ≈ 1).
    min_overlap:
        Minimum co-claimed objects before a pair can be scored.
    **truthfinder_kwargs:
        Forwarded to the inner :class:`TruthFinder`.

    Attributes
    ----------
    cliques_:
        List of detected copying cliques (sets of source names).
    truth_, source_trust_:
        As in :class:`TruthFinder` (trusts reported for every source;
        clique members share their representative's trust).

    Example
    -------
    >>> model = CopyAwareTruthFinder().fit(claims)   # doctest: +SKIP
    >>> model.cliques_                                # doctest: +SKIP
    [{'bad_0', 'copier_0', 'copier_1'}]
    """

    def __init__(
        self,
        *,
        dependence_threshold: float = 0.9,
        min_overlap: int = 3,
        **truthfinder_kwargs,
    ):
        check_probability(dependence_threshold, "dependence_threshold")
        if min_overlap < 1:
            raise ValueError(f"min_overlap must be >= 1, got {min_overlap}")
        self.dependence_threshold = float(dependence_threshold)
        self.min_overlap = int(min_overlap)
        self.truthfinder_kwargs = truthfinder_kwargs
        self.cliques_: list[set] | None = None
        self.truth_: dict | None = None
        self.source_trust_: dict | None = None
        self.dependence_: dict | None = None

    def fit(self, claims: Iterable[tuple]) -> "CopyAwareTruthFinder":
        """Detect copier cliques, collapse them, and run TruthFinder."""
        claims = list(claims)
        dependence = estimate_source_dependence(
            claims, min_overlap=self.min_overlap
        )
        self.dependence_ = dependence

        # union-find over copier pairs
        parent: dict = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x, y):
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[ry] = rx

        for (s1, s2), score in dependence.items():
            if score >= self.dependence_threshold:
                union(s1, s2)

        groups: dict = {}
        all_sources = {s for s, _, _ in claims}
        for s in all_sources:
            groups.setdefault(find(s), set()).add(s)
        self.cliques_ = [g for g in groups.values() if len(g) > 1]

        # collapse each clique to its representative: keep one copy of
        # every distinct (object, value) claim made by clique members
        representative = {s: find(s) for s in all_sources}
        collapsed: set = set()
        kept_claims: list[tuple] = []
        for source, obj, value in claims:
            rep = representative[source]
            key = (rep, obj, value)
            if key in collapsed:
                continue
            collapsed.add(key)
            kept_claims.append((rep, obj, value))

        inner = TruthFinder(**self.truthfinder_kwargs).fit(kept_claims)
        self.truth_ = inner.truth_
        self.source_trust_ = {
            s: inner.source_trust_[representative[s]] for s in all_sources
        }
        return self

    def accuracy_against(self, truth: dict) -> float:
        """Fraction of objects predicted correctly (requires :meth:`fit`)."""
        if self.truth_ is None:
            raise RuntimeError("call fit() first")
        if not truth:
            return 0.0
        return sum(
            1 for obj, v in truth.items() if self.truth_.get(obj) == v
        ) / len(truth)
