"""Object reconciliation by link analysis (tutorial §3(b)).

Record linkage across two sets of references to the same underlying
entities (e.g. author lists from two bibliographic sources).  Attribute
evidence alone (string similarity of names) is brittle; the tutorial's
point is that the *links* — which papers/venues/co-entities each record
touches — identify entities even when names disagree.

The reconciler scores every candidate pair by a convex combination of
attribute similarity and link-context cosine, then runs a collective
refinement: once two records are matched, their contexts are treated as
shared, boosting the scores of neighbouring pairs (the "matched neighbours
are evidence" recursion), and finally extracts a greedy one-to-one
matching above a confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError
from repro.utils.sparse import to_csr
from repro.utils.validation import check_positive, check_probability

__all__ = ["MatchResult", "LinkReconciler", "string_similarity"]


def string_similarity(a: str, b: str) -> float:
    """Normalized edit-overlap similarity (difflib ratio) of two strings."""
    return SequenceMatcher(None, str(a), str(b)).ratio()


@dataclass
class MatchResult:
    """A reconciled pair: indices into the two record sets plus the score."""

    left: int
    right: int
    score: float


class LinkReconciler:
    """Reconcile two record sets sharing a link-context space.

    Parameters
    ----------
    alpha:
        Weight of attribute (name) similarity versus link evidence
        (``alpha=0`` is pure link analysis, ``alpha=1`` pure string
        matching — the baseline the tutorial argues against).
    threshold:
        Minimum combined score for a pair to be matched.
    n_rounds:
        Collective refinement rounds (context sharing across matches).
    boost:
        Context mass copied between tentatively matched records per round.

    Example
    -------
    >>> rec = LinkReconciler(alpha=0.3)                      # doctest: +SKIP
    >>> rec.fit(ctx_a, ctx_b, names_a, names_b)              # doctest: +SKIP
    >>> [(m.left, m.right) for m in rec.matches_]            # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        alpha: float = 0.4,
        threshold: float = 0.5,
        n_rounds: int = 2,
        boost: float = 0.5,
    ):
        check_probability(alpha, "alpha")
        check_probability(threshold, "threshold")
        check_positive(n_rounds, "n_rounds")
        check_probability(boost, "boost")
        self.alpha = float(alpha)
        self.threshold = float(threshold)
        self.n_rounds = int(n_rounds)
        self.boost = float(boost)
        self.matches_: list[MatchResult] | None = None
        self.scores_: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _cosine(a: sp.csr_matrix, b: sp.csr_matrix) -> np.ndarray:
        def norm_rows(m):
            n = np.sqrt(np.asarray(m.multiply(m).sum(axis=1)).ravel())
            scale = np.divide(1.0, n, out=np.zeros_like(n), where=n > 0)
            return sp.diags(scale).dot(m)

        return np.asarray(norm_rows(a).dot(norm_rows(b).T).todense())

    def fit(
        self,
        context_left,
        context_right,
        names_left=None,
        names_right=None,
    ) -> "LinkReconciler":
        """Score and match the two record sets.

        ``context_left``/``context_right`` are ``(n, n_context)`` link
        matrices over a *shared* context column space (papers, venues,
        co-entities).  Optional name lists add attribute evidence.
        """
        left = to_csr(context_left)
        right = to_csr(context_right)
        if left.shape[1] != right.shape[1]:
            raise ValueError(
                f"context spaces differ: {left.shape[1]} vs {right.shape[1]}"
            )
        n_l, n_r = left.shape[0], right.shape[0]

        if names_left is not None and names_right is not None:
            name_sim = np.zeros((n_l, n_r))
            for i, a in enumerate(names_left):
                for j, b in enumerate(names_right):
                    name_sim[i, j] = string_similarity(a, b)
        else:
            name_sim = None

        work_left, work_right = left.copy().tolil(), right.copy().tolil()
        scores = np.zeros((n_l, n_r))
        for round_no in range(self.n_rounds):
            link_sim = self._cosine(work_left.tocsr(), work_right.tocsr())
            if name_sim is None:
                scores = link_sim
            else:
                scores = self.alpha * name_sim + (1 - self.alpha) * link_sim
            if round_no == self.n_rounds - 1:
                break
            # collective boost: tentatively matched pairs share context
            tentative = self._greedy_matching(scores)
            work_left, work_right = left.copy().tolil(), right.copy().tolil()
            for m in tentative:
                shared_r = right.getrow(m.right) * self.boost
                shared_l = left.getrow(m.left) * self.boost
                work_left[m.left] = (left.getrow(m.left) + shared_r).tolil()
                work_right[m.right] = (right.getrow(m.right) + shared_l).tolil()

        self.scores_ = scores
        self.matches_ = self._greedy_matching(scores)
        return self

    def _greedy_matching(self, scores: np.ndarray) -> list[MatchResult]:
        """One-to-one matching: repeatedly take the best unused pair
        above the threshold."""
        n_l, n_r = scores.shape
        order = np.dstack(
            np.unravel_index(np.argsort(-scores, axis=None), scores.shape)
        )[0]
        used_l: set[int] = set()
        used_r: set[int] = set()
        out: list[MatchResult] = []
        for i, j in order:
            s = float(scores[i, j])
            if s < self.threshold:
                break
            if i in used_l or j in used_r:
                continue
            used_l.add(int(i))
            used_r.add(int(j))
            out.append(MatchResult(int(i), int(j), s))
        return out

    # ------------------------------------------------------------------
    def match_pairs(self) -> list[tuple[int, int]]:
        """Matched ``(left, right)`` index pairs (requires :meth:`fit`)."""
        if self.matches_ is None:
            raise NotFittedError("call fit() first")
        return [(m.left, m.right) for m in self.matches_]
