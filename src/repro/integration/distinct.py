"""DISTINCT — distinguishing objects with identical names (tutorial §3(c)).

The inverse problem of reconciliation: many references carry the *same*
name ("Wei Wang") but belong to different real-world entities.  DISTINCT
(Yin, Han & Yu, ICDE'07) groups references by two kinds of link evidence:

* **set resemblance** of the references' neighbourhoods (shared
  co-authors/venues — cosine on the context vectors here);
* **random-walk connection strength** — the probability that short walks
  from the two references meet (two-step meeting probability on the
  reference–context bipartite graph).

References are then merged by average-linkage agglomerative clustering
until no pair of groups exceeds the similarity threshold; the number of
distinct entities is *discovered*, not given.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotFittedError
from repro.utils.sparse import row_normalize, to_csr
from repro.utils.validation import check_positive, check_probability

__all__ = ["Distinct"]


class Distinct:
    """Group same-named references into real-world entities.

    Parameters
    ----------
    threshold:
        Merge groups while some pair's average-linkage similarity exceeds
        this value; the final group count is the number of entities.
    walk_weight:
        Weight of the random-walk evidence versus set resemblance.
    n_clusters:
        Optional override: merge down to exactly this many groups and
        ignore the threshold (used when the entity count is known).

    Attributes
    ----------
    labels_:
        Entity id per reference.
    n_entities_:
        Number of groups discovered.
    similarity_:
        The pairwise reference-similarity matrix used for clustering.

    Example
    -------
    >>> model = Distinct(threshold=0.2).fit(context)  # doctest: +SKIP
    >>> model.n_entities_                              # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        threshold: float = 0.4,
        walk_weight: float = 0.5,
        n_clusters: int | None = None,
    ):
        check_probability(threshold, "threshold")
        check_probability(walk_weight, "walk_weight")
        if n_clusters is not None:
            check_positive(n_clusters, "n_clusters")
        self.threshold = float(threshold)
        self.walk_weight = float(walk_weight)
        self.n_clusters = n_clusters
        self.labels_: np.ndarray | None = None
        self.n_entities_: int | None = None
        self.similarity_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, context) -> "Distinct":
        """Cluster references given their ``(n_refs, n_context)`` link matrix."""
        ctx = to_csr(context)
        n = ctx.shape[0]
        if n == 0:
            raise ValueError("need at least one reference")

        sim = self._reference_similarity(ctx)
        self.similarity_ = sim
        labels = self._agglomerate(sim)
        self.labels_ = labels
        self.n_entities_ = int(labels.max()) + 1
        return self

    def _reference_similarity(self, ctx: sp.csr_matrix) -> np.ndarray:
        """Combine set resemblance (cosine) and two-step walk meeting
        probability into one [0, 1] similarity matrix."""
        n = ctx.shape[0]
        # cosine of raw context vectors
        norms = np.sqrt(np.asarray(ctx.multiply(ctx).sum(axis=1)).ravel())
        scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
        unit = sp.diags(scale).dot(ctx)
        cosine = np.asarray(unit.dot(unit.T).todense())

        # two-step meeting probability: both references walk to a uniform
        # context neighbour; normalized by the self-meeting probability to
        # land in [0, 1] (references with concentrated contexts meet often)
        walk = row_normalize(ctx)
        meet = np.asarray(walk.dot(walk.T).todense())
        self_meet = np.sqrt(np.outer(meet.diagonal(), meet.diagonal()))
        walk_sim = np.divide(
            meet, self_meet, out=np.zeros_like(meet), where=self_meet > 0
        )

        sim = (1 - self.walk_weight) * cosine + self.walk_weight * walk_sim
        np.fill_diagonal(sim, 1.0)
        return np.clip(sim, 0.0, 1.0)

    def _agglomerate(self, sim: np.ndarray) -> np.ndarray:
        """Average-linkage agglomeration driven by threshold or target k."""
        n = sim.shape[0]
        labels = np.arange(n)
        group_sim = sim.copy()
        sizes = np.ones(n)
        active = list(range(n))
        np.fill_diagonal(group_sim, -np.inf)

        def merge_target_reached() -> bool:
            if self.n_clusters is not None:
                return len(active) <= self.n_clusters
            return False

        while len(active) > 1 and not merge_target_reached():
            sub = group_sim[np.ix_(active, active)]
            best_flat = int(np.argmax(sub))
            bi, bj = divmod(best_flat, len(active))
            best_val = sub[bi, bj]
            if self.n_clusters is None and best_val < self.threshold:
                break
            gi, gj = active[bi], active[bj]
            if gi > gj:
                gi, gj = gj, gi
            # average linkage update
            for other in active:
                if other in (gi, gj):
                    continue
                merged = (
                    sizes[gi] * group_sim[gi, other]
                    + sizes[gj] * group_sim[gj, other]
                ) / (sizes[gi] + sizes[gj])
                group_sim[gi, other] = merged
                group_sim[other, gi] = merged
            sizes[gi] += sizes[gj]
            labels[labels == gj] = gi
            active.remove(gj)

        _, out = np.unique(labels, return_inverse=True)
        return out.astype(np.int64)

    # ------------------------------------------------------------------
    def predict_entities(self) -> np.ndarray:
        """Entity labels (requires :meth:`fit`)."""
        if self.labels_ is None:
            raise NotFittedError("call fit() first")
        return self.labels_
