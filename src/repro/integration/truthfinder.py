"""TruthFinder — veracity analysis by link mining (Yin, Han & Yu, TKDE'08).

Tutorial §3(d): when many sources claim conflicting values for the same
object ("what year was this book published?"), naive voting trusts the
crowd; TruthFinder instead iterates over the bipartite source–fact
network:

* a fact is confident when **trustworthy** sources assert it (and when
  similar facts about the same object support it);
* a source is trustworthy when the facts it asserts are **confident**.

Scores travel through the log-domain transform ``τ = −ln(1 − t)`` so that
independent supporting sources add, and a dampened logistic keeps mutual
reinforcement from diverging — both straight from the paper.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterable

import numpy as np

from repro.exceptions import ConvergenceWarning, NotFittedError
from repro.utils.convergence import ConvergenceInfo
from repro.utils.validation import check_in_range, check_positive, check_probability

__all__ = ["TruthFinder", "majority_vote"]

Claim = "tuple[source, object, value]"


def majority_vote(claims: Iterable[tuple]) -> dict:
    """Baseline: per object, the value asserted by the most sources.

    Ties break toward the value first claimed (stable), mirroring how a
    naive pipeline would behave.
    """
    votes: dict = {}
    order: dict = {}
    for i, (source, obj, value) in enumerate(claims):
        votes.setdefault(obj, {}).setdefault(value, set()).add(source)
        order.setdefault((obj, value), i)
    return {
        obj: max(
            values.items(),
            key=lambda item: (len(item[1]), -order[(obj, item[0])]),
        )[0]
        for obj, values in votes.items()
    }


class TruthFinder:
    """Iterative source-trust / fact-confidence propagation.

    Parameters
    ----------
    rho:
        Weight of the influence between facts about the same object
        (0 disables inter-fact influence).
    gamma:
        Dampening factor of the logistic that maps accumulated confidence
        scores back to probabilities.
    base_trust:
        Initial trustworthiness of every source.
    similarity:
        Optional ``f(value_a, value_b) -> [0, 1]`` between different
        values of one object; the *implication* of fact *f'* on fact *f*
        is ``2·similarity − 1`` in [−1, 1]: near-identical values support
        each other, unrelated values oppose.  Without a similarity
        function, every pair of different values gets implication −1
        (categorical conflict), as in the paper's default setting.
    max_iter, tol:
        Stop when the max change of any source's trust falls below *tol*.

    Attributes
    ----------
    source_trust_:
        ``{source: trust}`` learned trustworthiness.
    fact_confidence_:
        ``{(object, value): confidence}``.
    truth_:
        ``{object: value}`` the highest-confidence value per object.
    convergence_:
        Iteration record.

    Example
    -------
    >>> tf = TruthFinder().fit([
    ...     ("s1", "book", 1999), ("s2", "book", 1999), ("s3", "book", 2001),
    ... ])
    >>> tf.truth_["book"]
    1999
    """

    def __init__(
        self,
        *,
        rho: float = 0.5,
        gamma: float = 0.3,
        base_trust: float = 0.9,
        similarity: Callable | None = None,
        max_iter: int = 100,
        tol: float = 1e-6,
    ):
        check_probability(rho, "rho")
        check_positive(gamma, "gamma")
        check_in_range(base_trust, "base_trust", 0.0, 1.0, inclusive=False)
        check_positive(max_iter, "max_iter")
        self.rho = float(rho)
        self.gamma = float(gamma)
        self.base_trust = float(base_trust)
        self.similarity = similarity
        self.max_iter = int(max_iter)
        self.tol = float(tol)

        self.source_trust_: dict | None = None
        self.fact_confidence_: dict | None = None
        self.truth_: dict | None = None
        self.convergence_: ConvergenceInfo | None = None

    # ------------------------------------------------------------------
    def fit(self, claims: Iterable[tuple]) -> "TruthFinder":
        """Run the propagation on ``(source, object, value)`` claims."""
        claims = list(claims)
        if not claims:
            raise ValueError("claims must be non-empty")

        sources: dict = {}
        facts: dict = {}  # (object, value) -> fact index
        fact_keys: list[tuple] = []
        provides: list[tuple[int, int]] = []
        for source, obj, value in claims:
            s = sources.setdefault(source, len(sources))
            key = (obj, value)
            if key not in facts:
                facts[key] = len(facts)
                fact_keys.append(key)
            provides.append((s, facts[key]))
        n_s, n_f = len(sources), len(facts)

        provider_lists: list[list[int]] = [[] for _ in range(n_f)]
        source_facts: list[set[int]] = [set() for _ in range(n_s)]
        for s, f in set(provides):
            provider_lists[f].append(s)
            source_facts[s].add(f)

        # facts grouped per object, with pairwise influence weights
        by_object: dict = {}
        for f, (obj, _) in enumerate(fact_keys):
            by_object.setdefault(obj, []).append(f)
        influence: list[list[tuple[int, float]]] = [[] for _ in range(n_f)]
        for obj, fs in by_object.items():
            for f in fs:
                for f2 in fs:
                    if f2 == f:
                        continue
                    va, vb = fact_keys[f2][1], fact_keys[f][1]
                    sim = (
                        self.similarity(va, vb)
                        if self.similarity is not None
                        else 0.0
                    )
                    influence[f].append((f2, 2.0 * sim - 1.0))

        trust = np.full(n_s, self.base_trust)
        confidence = np.zeros(n_f)
        history: list[float] = []
        converged = False
        for iteration in range(self.max_iter):
            tau = -np.log(np.maximum(1.0 - trust, 1e-12))
            sigma = np.zeros(n_f)
            for f in range(n_f):
                sigma[f] = tau[provider_lists[f]].sum()
            adjusted = sigma.copy()
            if self.rho > 0:
                for f in range(n_f):
                    adjusted[f] += self.rho * sum(
                        w * sigma[f2] for f2, w in influence[f]
                    )
            confidence = 1.0 / (1.0 + np.exp(-self.gamma * adjusted))
            new_trust = np.array(
                [
                    confidence[list(fs)].mean() if fs else self.base_trust
                    for fs in source_facts
                ]
            )
            delta = float(np.abs(new_trust - trust).max())
            history.append(delta)
            trust = new_trust
            if delta <= self.tol:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"TruthFinder did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.convergence_ = ConvergenceInfo(
            converged, iteration + 1, history[-1], self.tol, history
        )

        inv_sources = {idx: name for name, idx in sources.items()}
        self.source_trust_ = {inv_sources[i]: float(trust[i]) for i in range(n_s)}
        self.fact_confidence_ = {
            fact_keys[f]: float(confidence[f]) for f in range(n_f)
        }
        self.truth_ = {}
        for obj, fs in by_object.items():
            best = max(fs, key=lambda f: confidence[f])
            self.truth_[obj] = fact_keys[best][1]
        return self

    # ------------------------------------------------------------------
    def predict(self, obj):
        """The believed value of *obj* (requires :meth:`fit`)."""
        if self.truth_ is None:
            raise NotFittedError("call fit() first")
        if obj not in self.truth_:
            raise KeyError(f"no claims were made about {obj!r}")
        return self.truth_[obj]
