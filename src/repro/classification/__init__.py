"""Classification of information networks: CrossMine (cross-relational),
GNetMine (heterogeneous transductive), tag-graph classification, and the
homogeneous label-propagation baseline (tutorial §5)."""

from repro.classification.crossmine import CrossMine, Predicate, Rule
from repro.classification.gnetmine import GNetMine
from repro.classification.label_propagation import label_propagation
from repro.classification.tagging import TagGraphClassifier, tag_vector_knn

__all__ = [
    "CrossMine",
    "Predicate",
    "Rule",
    "GNetMine",
    "label_propagation",
    "TagGraphClassifier",
    "tag_vector_knn",
]
