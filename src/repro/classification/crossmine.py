"""CrossMine — classification across multiple database relations (§5(a)).

CrossMine (Yin, Han, Yang & Yu, TKDE'06) classifies the tuples of a target
table using evidence scattered across joined tables, **without flattening**
the database into one wide table.  Its two signature ideas are both here:

* **Tuple-ID propagation** — instead of physically joining, each search
  state carries a sparse ``(n_target, n_rows)`` correspondence matrix
  mapping target tuples to the rows of the currently considered table;
  extending the join path is one sparse multiply.
* **FOIL-style sequential covering** — rules are conjunctions of complex
  predicates ``[join path] column = value``; literals are grown greedily
  by FOIL gain, rules are collected per class until coverage or gain is
  exhausted.

Prediction applies rules in learned order (first match wins) with a
majority-class default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.relational.propagation import join_matrix, value_indicator
from repro.exceptions import NotFittedError, RelationalError
from repro.relational.database import Database
from repro.utils.validation import check_positive

__all__ = ["Predicate", "Rule", "CrossMine"]


@dataclass(frozen=True)
class Predicate:
    """One literal: target tuples whose join path reaches a row with
    ``column == value`` in table ``path[-1]``."""

    path: tuple[str, ...]
    column: str
    value: object

    def __str__(self) -> str:
        return f"{' -> '.join(self.path)}.{self.column} = {self.value!r}"


@dataclass
class Rule:
    """A conjunction of predicates concluding a class."""

    predicates: list[Predicate]
    klass: object
    coverage: int = 0
    precision: float = 0.0

    def __str__(self) -> str:
        body = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"IF {body} THEN class = {self.klass!r} " \
               f"(cover={self.coverage}, prec={self.precision:.2f})"


@dataclass
class _SearchState:
    """A join path plus the propagated tuple-ID matrix reaching it."""

    path: tuple[str, ...]
    prop: sp.csr_matrix | None  # None = identity on the target table


class CrossMine:
    """Rule-based cross-relational classifier.

    Parameters
    ----------
    db:
        Database with declared foreign keys.
    target_table:
        Table whose rows carry the class label.
    label_column:
        Column of *target_table* holding the class (excluded from
        candidate predicates).
    max_hops:
        Maximum join-path length for predicates.
    max_literals:
        Maximum predicates per rule.
    min_gain:
        FOIL-gain threshold to accept another literal.
    min_coverage:
        Stop covering a class when fewer positives remain.
    max_rules_per_class:
        Safety cap on the rule list.

    Example
    -------
    >>> clf = CrossMine(db, "client", "risk").fit()       # doctest: +SKIP
    >>> clf.predict()                                      # doctest: +SKIP
    """

    def __init__(
        self,
        db: Database,
        target_table: str,
        label_column: str,
        *,
        max_hops: int = 2,
        max_literals: int = 3,
        min_gain: float = 1.0,
        min_coverage: int = 2,
        max_rules_per_class: int = 20,
    ):
        check_positive(max_literals, "max_literals")
        check_positive(min_coverage, "min_coverage")
        check_positive(max_rules_per_class, "max_rules_per_class")
        if max_hops < 0:
            raise ValueError("max_hops must be >= 0")
        self.db = db
        self.target_table = target_table
        self.label_column = label_column
        self.max_hops = int(max_hops)
        self.max_literals = int(max_literals)
        self.min_gain = float(min_gain)
        self.min_coverage = int(min_coverage)
        self.max_rules_per_class = int(max_rules_per_class)

        self.rules_: list[Rule] | None = None
        self.default_class_ = None
        self.classes_: list | None = None

    # ------------------------------------------------------------------
    # Predicate machinery
    # ------------------------------------------------------------------
    def _search_states(self) -> list[_SearchState]:
        """Enumerate acyclic join paths up to ``max_hops`` with their
        propagated tuple-ID matrices."""
        states = [_SearchState((self.target_table,), None)]
        frontier = [states[0]]
        for _ in range(self.max_hops):
            nxt: list[_SearchState] = []
            for state in frontier:
                for neighbor in self.db.joinable_tables(state.path[-1]):
                    if neighbor in state.path:
                        continue
                    step = join_matrix(self.db, state.path[-1], neighbor)
                    prop = step if state.prop is None else state.prop.dot(step)
                    new = _SearchState(state.path + (neighbor,), prop.tocsr())
                    states.append(new)
                    nxt.append(new)
            frontier = nxt
        return states

    def _candidate_predicates(
        self,
    ) -> list[tuple[Predicate, np.ndarray]]:
        """All (predicate, satisfying-target-mask) pairs."""
        out: list[tuple[Predicate, np.ndarray]] = []
        n_target = len(self.db.table(self.target_table))
        for state in self._search_states():
            table = self.db.table(state.path[-1])
            fk_columns = {
                fk.column for fk in self.db.foreign_keys_of(state.path[-1])
            }
            for column in table.columns:
                if column == table.primary_key or column in fk_columns:
                    continue
                if state.path[-1] == self.target_table and column == self.label_column:
                    continue
                indicator, vocab = value_indicator(self.db, state.path[-1], column)
                if len(vocab) < 2 or len(vocab) > 50:
                    continue  # constant or quasi-key column
                reach = (
                    indicator
                    if state.prop is None
                    else state.prop.dot(indicator)
                )
                reach = (reach > 0).toarray() if sp.issparse(reach) else reach > 0
                for v_idx, value in enumerate(vocab):
                    mask = np.asarray(reach[:, v_idx]).ravel().astype(bool)
                    if 0 < mask.sum() < n_target:
                        out.append(
                            (Predicate(state.path, column, value), mask)
                        )
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _foil_gain(
        pos: np.ndarray, neg: np.ndarray, mask: np.ndarray
    ) -> float:
        """FOIL gain of restricting (pos, neg) by *mask*."""
        p0, n0 = float(pos.sum()), float(neg.sum())
        p1 = float((pos & mask).sum())
        n1 = float((neg & mask).sum())
        if p1 == 0:
            return -np.inf
        before = np.log2(p0 / (p0 + n0)) if p0 > 0 else -np.inf
        after = np.log2(p1 / (p1 + n1))
        return p1 * (after - before)

    def _grow_rule(
        self,
        klass,
        pos: np.ndarray,
        neg: np.ndarray,
        candidates: list[tuple[Predicate, np.ndarray]],
    ) -> tuple[Rule, np.ndarray] | None:
        """Grow one rule by greedy FOIL literals; None when no literal
        clears ``min_gain``."""
        rule_mask = np.ones_like(pos)
        literals: list[Predicate] = []
        cur_pos, cur_neg = pos.copy(), neg.copy()
        for _ in range(self.max_literals):
            best = None
            best_gain = self.min_gain
            for pred, mask in candidates:
                if pred in literals:
                    continue
                gain = self._foil_gain(cur_pos, cur_neg, mask)
                if gain > best_gain:
                    best, best_gain = (pred, mask), gain
            if best is None:
                break
            pred, mask = best
            literals.append(pred)
            rule_mask &= mask
            cur_pos = cur_pos & mask
            cur_neg = cur_neg & mask
            if cur_neg.sum() == 0:
                break
        if not literals or cur_pos.sum() == 0:
            return None
        covered = int(cur_pos.sum())
        precision = covered / float(rule_mask.sum())
        return Rule(literals, klass, covered, precision), rule_mask

    def fit(self) -> "CrossMine":
        """Learn an ordered rule list by per-class sequential covering."""
        table = self.db.table(self.target_table)
        labels = np.asarray(table.column(self.label_column), dtype=object)
        if len(labels) == 0:
            raise RelationalError(f"target table {self.target_table!r} is empty")
        classes, counts = np.unique(labels.astype(str), return_counts=True)
        raw_classes = [labels[np.argmax(labels.astype(str) == c)] for c in classes]
        self.classes_ = list(raw_classes)
        self.default_class_ = raw_classes[int(counts.argmax())]

        candidates = self._candidate_predicates()
        rules: list[Rule] = []
        for klass in raw_classes:
            pos = labels == klass
            neg = ~pos
            remaining = pos.copy()
            for _ in range(self.max_rules_per_class):
                if remaining.sum() < self.min_coverage:
                    break
                grown = self._grow_rule(klass, remaining, neg, candidates)
                if grown is None:
                    break
                rule, rule_mask = grown
                newly = remaining & rule_mask
                if newly.sum() == 0:
                    break
                rules.append(rule)
                remaining = remaining & ~rule_mask
        # order: most precise, then highest coverage first
        rules.sort(key=lambda r: (-r.precision, -r.coverage))
        self.rules_ = rules
        return self

    # ------------------------------------------------------------------
    def predict(self, db: Database | None = None) -> np.ndarray:
        """Class per target tuple; first matching rule wins, majority
        default otherwise.  Pass *db* to classify a different database
        with the same schema (e.g. a held-out fold)."""
        if self.rules_ is None:
            raise NotFittedError("call fit() first")
        use_db = db if db is not None else self.db
        n = len(use_db.table(self.target_table))

        # evaluate every distinct predicate once on use_db
        pred_masks: dict[Predicate, np.ndarray] = {}
        saved_db = self.db
        try:
            self.db = use_db
            states = {s.path: s for s in self._search_states()}
            for rule in self.rules_:
                for pred in rule.predicates:
                    if pred in pred_masks:
                        continue
                    state = states.get(pred.path)
                    if state is None:
                        pred_masks[pred] = np.zeros(n, dtype=bool)
                        continue
                    indicator, vocab = value_indicator(
                        use_db, pred.path[-1], pred.column
                    )
                    if pred.value not in vocab:
                        pred_masks[pred] = np.zeros(n, dtype=bool)
                        continue
                    v_idx = vocab.index(pred.value)
                    reach = (
                        indicator
                        if state.prop is None
                        else state.prop.dot(indicator)
                    )
                    col = (
                        reach[:, v_idx].toarray().ravel()
                        if sp.issparse(reach)
                        else np.asarray(reach[:, v_idx]).ravel()
                    )
                    pred_masks[pred] = col > 0
        finally:
            self.db = saved_db

        out = np.empty(n, dtype=object)
        decided = np.zeros(n, dtype=bool)
        for rule in self.rules_:
            mask = np.ones(n, dtype=bool)
            for pred in rule.predicates:
                mask &= pred_masks[pred]
            newly = mask & ~decided
            out[newly] = rule.klass
            decided |= mask
        out[~decided] = self.default_class_
        return out

    def accuracy(self, db: Database | None = None) -> float:
        """Training (or held-out) accuracy of the learned rule list."""
        use_db = db if db is not None else self.db
        truth = np.asarray(
            use_db.table(self.target_table).column(self.label_column), dtype=object
        )
        pred = self.predict(db)
        return float((pred == truth).mean())
