"""Web-object classification on the social tagging graph (tutorial §5(b)).

Following the cited KDD'09 work ("Exploring Social Tagging Graph for Web
Object Classification"): objects (photos, URLs) and tags form a bipartite
graph; a handful of objects are labeled.  Two classifiers:

* :class:`TagGraphClassifier` — transductive propagation on the
  object–tag graph: object scores flow to tags and back, with seeds
  clamped (the bipartite special case of GNetMine, but packaged for the
  tagging scenario and supporting extra object–object context links);
* :func:`tag_vector_knn` — the content-only baseline: k-nearest-neighbour
  voting on TF-IDF-weighted tag vectors, ignoring the graph structure.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceWarning, NotFittedError
from repro.utils.convergence import ConvergenceInfo
from repro.utils.sparse import symmetric_normalize, to_csr
from repro.utils.validation import check_positive, check_probability

__all__ = ["TagGraphClassifier", "tag_vector_knn"]


class TagGraphClassifier:
    """Transductive classification of objects through their tags.

    Parameters
    ----------
    alpha:
        Propagation weight versus seed clamping.
    max_iter, tol:
        Fixed-point controls.

    Attributes
    ----------
    object_labels_, tag_labels_:
        Predicted classes for objects and tags.
    object_scores_, tag_scores_:
        Class-score matrices.
    """

    def __init__(self, *, alpha: float = 0.85, max_iter: int = 200, tol: float = 1e-8):
        check_probability(alpha, "alpha")
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.object_labels_: np.ndarray | None = None
        self.tag_labels_: np.ndarray | None = None
        self.object_scores_: np.ndarray | None = None
        self.tag_scores_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.convergence_: ConvergenceInfo | None = None

    def fit(
        self,
        object_tag,
        labels,
        labeled_mask,
        *,
        object_object=None,
    ) -> "TagGraphClassifier":
        """Propagate the seeds over the tagging graph.

        Parameters
        ----------
        object_tag:
            ``(n_objects, n_tags)`` tag-assignment matrix.
        labels, labeled_mask:
            Class per object and the boolean seed mask.
        object_object:
            Optional ``(n_objects, n_objects)`` context links (same user,
            same group) blended into the propagation.
        """
        w = to_csr(object_tag)
        n_obj, n_tag = w.shape
        labels = np.asarray(labels).ravel()
        mask = np.asarray(labeled_mask, dtype=bool).ravel()
        if labels.shape != (n_obj,) or mask.shape != (n_obj,):
            raise ValueError(f"labels/mask must have shape ({n_obj},)")
        if not mask.any():
            raise ValueError("at least one object must be labeled")
        classes = np.unique(labels[mask])
        k = classes.size
        class_index = {c: i for i, c in enumerate(classes)}
        y = np.zeros((n_obj, k))
        for i in np.flatnonzero(mask):
            y[i, class_index[labels[i]]] = 1.0

        s_ot = symmetric_normalize(w)
        s_to = s_ot.T.tocsr()
        s_oo = None
        if object_object is not None:
            oo = to_csr(object_object)
            if oo.shape != (n_obj, n_obj):
                raise ValueError(
                    f"object_object must be ({n_obj}, {n_obj}), got {oo.shape}"
                )
            s_oo = symmetric_normalize(oo)

        f_obj = y.copy()
        f_tag = np.zeros((n_tag, k))
        history: list[float] = []
        converged = False
        for iteration in range(self.max_iter):
            new_tag = s_to.dot(f_obj)
            via_tags = s_ot.dot(new_tag)
            if s_oo is not None:
                via_tags = 0.5 * via_tags + 0.5 * s_oo.dot(f_obj)
            new_obj = self.alpha * via_tags + (1 - self.alpha) * y
            residual = float(
                max(np.abs(new_obj - f_obj).max(), np.abs(new_tag - f_tag).max())
            )
            history.append(residual)
            f_obj, f_tag = new_obj, new_tag
            if residual <= self.tol:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"tag-graph propagation did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.convergence_ = ConvergenceInfo(
            converged, iteration + 1, history[-1], self.tol, history
        )
        self.classes_ = classes
        self.object_scores_ = f_obj
        self.tag_scores_ = f_tag

        obj_idx = f_obj.argmax(axis=1)
        zero = f_obj.sum(axis=1) == 0
        if zero.any():
            majority = int(y.sum(axis=0).argmax())
            obj_idx[zero] = majority
        predicted = classes[obj_idx]
        predicted[mask] = labels[mask]
        self.object_labels_ = predicted
        tag_idx = f_tag.argmax(axis=1)
        self.tag_labels_ = classes[tag_idx]
        return self

    def predict(self) -> np.ndarray:
        """Predicted object classes (requires :meth:`fit`)."""
        if self.object_labels_ is None:
            raise NotFittedError("call fit() first")
        return self.object_labels_


def tag_vector_knn(
    object_tag,
    labels,
    labeled_mask,
    *,
    k: int = 5,
) -> np.ndarray:
    """Content-only baseline: cosine kNN voting on TF-IDF tag vectors.

    Each unlabeled object takes the majority class of its *k* most
    cosine-similar labeled objects; ties break toward the globally more
    frequent class.
    """
    check_positive(k, "k")
    w = to_csr(object_tag).astype(np.float64)
    labels = np.asarray(labels).ravel()
    mask = np.asarray(labeled_mask, dtype=bool).ravel()
    if not mask.any():
        raise ValueError("at least one object must be labeled")
    n_obj, n_tag = w.shape

    # TF-IDF weighting
    df = np.asarray((w > 0).sum(axis=0)).ravel()
    idf = np.log((1.0 + n_obj) / (1.0 + df)) + 1.0
    x = w.dot(sp.diags(idf)).tocsr()
    norms = np.sqrt(np.asarray(x.multiply(x).sum(axis=1)).ravel())
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    x = sp.diags(scale).dot(x)

    labeled_idx = np.flatnonzero(mask)
    sims = np.asarray(x.dot(x[labeled_idx].T).todense())  # (n_obj, n_labeled)
    classes, seed_classes = np.unique(labels[mask], return_inverse=True)
    majority = int(np.bincount(seed_classes).argmax())

    out = labels.copy()
    for i in range(n_obj):
        if mask[i]:
            continue
        order = np.argsort(-sims[i], kind="stable")[:k]
        votes = np.bincount(seed_classes[order], minlength=classes.size)
        if votes.sum() == 0:
            out[i] = classes[majority]
            continue
        best = votes.max()
        tied = np.flatnonzero(votes == best)
        pick = tied[0] if tied.size == 1 else (majority if majority in tied else tied[0])
        out[i] = classes[pick]
    return out
