"""GNetMine-style transductive classification on a HIN (tutorial §5(c)).

"Effective classification of multiple heterogeneous networks": knowledge
propagates along *typed* relations instead of a flattened graph.  Each
node type *t* keeps a class-score matrix ``F_t``; every relation (t, s)
contributes the graph-regularization update through its symmetrically
normalized biadjacency ``S_ts``, and seed labels (of any type) clamp their
rows:

    F_t ← ( α · Σ_s λ_ts · S_ts F_s + (1 − α) · Y_t ) / normalizer

Keeping types separate is the whole point: venue labels reach authors
through papers with the right normalization per relation, instead of
being swamped by the dominant edge type of a homogeneous projection.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceWarning, NotFittedError, TypeNotFoundError
from repro.networks.hin import HIN
from repro.query.estimator import Estimator
from repro.query.results import ClassificationResult
from repro.utils.convergence import ConvergenceInfo
from repro.utils.sparse import symmetric_normalize
from repro.utils.validation import check_probability

__all__ = ["GNetMine"]


class GNetMine(Estimator):
    """Graph-regularized transductive classifier over all types of a HIN.

    Parameters
    ----------
    alpha:
        Propagation weight versus seed clamping.
    relation_weights:
        Optional ``{relation_name: weight}`` (λ); defaults to 1 for every
        relation.
    max_iter, tol:
        Fixed-point iteration controls.

    Attributes
    ----------
    scores_:
        ``{type: (n_type, k) array}`` class scores after propagation.
    labels_:
        ``{type: (n_type,) array}`` argmax class per object.
    classes_:
        Sorted class values.

    Example
    -------
    >>> model = GNetMine().fit(
    ...     hin, seeds={"venue": (venue_labels, venue_mask)})   # doctest: +SKIP
    >>> model.labels_["paper"]                                   # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        alpha: float = 0.85,
        relation_weights: dict | None = None,
        max_iter: int = 200,
        tol: float = 1e-8,
    ):
        check_probability(alpha, "alpha")
        self.alpha = float(alpha)
        self.relation_weights = dict(relation_weights or {})
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.scores_: dict[str, np.ndarray] | None = None
        self.labels_: dict[str, np.ndarray] | None = None
        self.classes_: np.ndarray | None = None
        self.convergence_: ConvergenceInfo | None = None
        self._hin: HIN | None = None

    # ------------------------------------------------------------------
    def fit(self, hin: HIN, seeds: dict) -> "GNetMine":
        """Propagate seed labels through every relation of *hin*.

        ``seeds`` maps type name to ``(labels, mask)``: integer class per
        object and a boolean mask of which objects are actually labeled.
        """
        if not seeds:
            raise ValueError("seeds must contain at least one type")
        self._hin = hin
        all_classes: list = []
        for t, (labels, mask) in seeds.items():
            if t not in hin.schema.node_types:
                raise TypeNotFoundError(f"unknown seed type {t!r}")
            labels = np.asarray(labels).ravel()
            mask = np.asarray(mask, dtype=bool).ravel()
            n = hin.node_count(t)
            if labels.shape != (n,) or mask.shape != (n,):
                raise ValueError(
                    f"seeds[{t!r}] arrays must have shape ({n},)"
                )
            all_classes.extend(labels[mask].tolist())
        if not all_classes:
            raise ValueError("at least one object must be labeled")
        classes = np.unique(all_classes)
        k = classes.size
        class_index = {c: i for i, c in enumerate(classes)}

        types = hin.schema.node_types
        y: dict[str, np.ndarray] = {
            t: np.zeros((hin.node_count(t), k)) for t in types
        }
        seed_mask: dict[str, np.ndarray] = {
            t: np.zeros(hin.node_count(t), dtype=bool) for t in types
        }
        for t, (labels, mask) in seeds.items():
            labels = np.asarray(labels).ravel()
            mask = np.asarray(mask, dtype=bool).ravel()
            for i in np.flatnonzero(mask):
                y[t][i, class_index[labels[i]]] = 1.0
            seed_mask[t] = mask

        # normalized relation operators, both directions
        operators: list[tuple[str, str, sp.csr_matrix, float]] = []
        degree_weight: dict[str, float] = {t: 0.0 for t in types}
        for rel in hin.schema.relations:
            w = hin.relation_matrix(rel.name)
            if w.nnz == 0:
                continue
            lam = float(self.relation_weights.get(rel.name, 1.0))
            s = symmetric_normalize(w)
            operators.append((rel.source, rel.target, s, lam))
            operators.append((rel.target, rel.source, s.T.tocsr(), lam))
            degree_weight[rel.source] += lam
            degree_weight[rel.target] += lam

        f = {t: y[t].copy() for t in types}
        history: list[float] = []
        converged = False
        for iteration in range(self.max_iter):
            residual = 0.0
            new_f: dict[str, np.ndarray] = {}
            for t in types:
                agg = np.zeros_like(f[t])
                for src, dst, op, lam in operators:
                    if src == t:
                        agg += lam * op.dot(f[dst])
                denom = degree_weight[t] if degree_weight[t] > 0 else 1.0
                new_f[t] = self.alpha * (agg / denom) + (1 - self.alpha) * y[t]
                residual = max(residual, float(np.abs(new_f[t] - f[t]).max()))
            f = new_f
            history.append(residual)
            if residual <= self.tol:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"GNetMine did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.convergence_ = ConvergenceInfo(
            converged, iteration + 1, history[-1], self.tol, history
        )

        self.classes_ = classes
        self.scores_ = f
        self.labels_ = {}
        for t in types:
            idx = f[t].argmax(axis=1)
            zero = f[t].sum(axis=1) == 0
            if zero.any():
                majority = int(y[t].sum(axis=0).argmax()) if y[t].any() else 0
                idx[zero] = majority
            labels_t = classes[idx]
            # seeds keep their class
            if seed_mask[t].any():
                seeded = seeds.get(t)
                if seeded is not None:
                    orig = np.asarray(seeded[0]).ravel()
                    labels_t[seed_mask[t]] = orig[seed_mask[t]]
            self.labels_[t] = labels_t
        return self

    # ------------------------------------------------------------------
    def _is_fitted(self) -> bool:
        return self.labels_ is not None

    def result(self) -> ClassificationResult:
        """Typed predictions for every node type of the network."""
        self._check_fitted()
        return ClassificationResult(
            self.classes_,
            self.labels_,
            self.scores_,
            names={t: self._hin.names(t) for t in self.labels_},
            method="gnetmine",
        )

    def predict(self, node_type: str) -> np.ndarray:
        """Predicted class per object of *node_type* (requires :meth:`fit`)."""
        if self.labels_ is None:
            raise NotFittedError("call fit() first")
        if node_type not in self.labels_:
            raise TypeNotFoundError(f"unknown node type {node_type!r}")
        return self.labels_[node_type]
