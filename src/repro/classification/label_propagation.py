"""Homogeneous label propagation — the baseline for HIN classification.

The classical transductive scheme (Zhou et al.'s "learning with local and
global consistency"): iterate

    F ← α · S · F + (1 − α) · Y

where ``S`` is the symmetrically normalized adjacency and ``Y`` the
one-hot seed labels.  GNetMine's experiments (our E12) compare against
exactly this method run on a homogeneous projection of the HIN.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning
from repro.networks.graph import Graph
from repro.utils.convergence import ConvergenceInfo
from repro.utils.sparse import symmetric_normalize
from repro.utils.validation import check_probability

__all__ = ["label_propagation"]


def label_propagation(
    graph: Graph,
    labels,
    labeled_mask,
    *,
    alpha: float = 0.85,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray, ConvergenceInfo]:
    """Propagate seed labels over a homogeneous graph.

    Parameters
    ----------
    graph:
        The (undirected) graph; edge weights modulate propagation.
    labels:
        Integer class per node (values for unlabeled nodes are ignored).
    labeled_mask:
        Boolean mask of seed nodes.
    alpha:
        Propagation weight versus clamping to the seeds.

    Returns
    -------
    (predicted, scores, info):
        ``predicted[i]`` is the argmax class for every node (seeds keep
        their seed class); ``scores`` is the ``(n, k)`` class-score matrix.
    """
    check_probability(alpha, "alpha")
    labels = np.asarray(labels).ravel()
    mask = np.asarray(labeled_mask, dtype=bool).ravel()
    n = graph.n_nodes
    if labels.shape != (n,) or mask.shape != (n,):
        raise ValueError(
            f"labels and labeled_mask must have shape ({n},), got "
            f"{labels.shape} and {mask.shape}"
        )
    if not mask.any():
        raise ValueError("at least one node must be labeled")

    classes = np.unique(labels[mask])
    k = classes.size
    class_index = {c: i for i, c in enumerate(classes)}
    y = np.zeros((n, k))
    for i in np.flatnonzero(mask):
        y[i, class_index[labels[i]]] = 1.0

    s = symmetric_normalize(graph.to_undirected().adjacency)
    f = y.copy()
    history: list[float] = []
    converged = False
    for iteration in range(max_iter):
        f_new = alpha * s.dot(f) + (1 - alpha) * y
        residual = float(np.abs(f_new - f).max())
        history.append(residual)
        f = f_new
        if residual <= tol:
            converged = True
            break
    if not converged:
        warnings.warn(
            f"label propagation did not converge in {max_iter} iterations",
            ConvergenceWarning,
            stacklevel=2,
        )
    info = ConvergenceInfo(converged, iteration + 1, history[-1], tol, history)

    predicted_idx = f.argmax(axis=1)
    # nodes with all-zero rows (unreachable from any seed): majority class
    zero_rows = f.sum(axis=1) == 0
    if zero_rows.any():
        majority = int(np.bincount([class_index[c] for c in labels[mask]]).argmax())
        predicted_idx[zero_rows] = majority
    predicted = classes[predicted_idx]
    predicted[mask] = labels[mask]
    return predicted, f, info
