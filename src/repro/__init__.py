"""repro — database-oriented heterogeneous information network analysis.

A production-quality reproduction of the system described in the SIGMOD
2010 tutorial *"Mining Knowledge from Databases: An Information Network
Analysis Approach"* (Han, Sun, Yan, Yu): turn relational data into typed
information networks and mine them — ranking (PageRank, HITS, authority
ranking), similarity (SimRank, Personalized PageRank, PathSim), clustering
(spectral, SCAN, LinkClus, CrossClus, RankClus, NetClus), data integration
(object reconciliation, DISTINCT, TruthFinder), classification (CrossMine,
GNetMine, tag-graph), and OLAP over information networks.

Quickstart
----------
>>> from repro.datasets import make_dblp_four_area
>>> dblp = make_dblp_four_area(seed=0)
>>> q = dblp.hin.query()
>>> clusters = q.cluster("netclus", n_clusters=4, seed=0)
>>> peers = q.similar("SIGMOD", "V-P-A-P-V", k=3)  # doctest: +SKIP
[('VLDB', 0.787), ('ICDE', 0.736), ('PODS', 0.575)]
"""

from repro import (
    classification,
    clustering,
    core,
    datasets,
    engine,
    ingest,
    integration,
    measures,
    networks,
    olap,
    query,
    ranking,
    relational,
    serving,
    similarity,
)
from repro.ingest import OpenWorldWorkload, StreamIngestor
from repro.engine import MetaPathEngine
from repro.exceptions import ReproError
from repro.networks import (
    HIN,
    AppliedUpdate,
    Graph,
    MetaPath,
    NetworkSchema,
    Relation,
    UpdateBatch,
    as_metapath,
)
from repro.query import (
    ClassificationResult,
    ClusteringResult,
    Estimator,
    QuerySession,
    RankingResult,
    TopKResult,
    connect,
)
from repro.serving import (
    ClusterService,
    QueryService,
    load_snapshot,
    save_snapshot,
    warm_from_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "HIN",
    "NetworkSchema",
    "Relation",
    "MetaPath",
    "MetaPathEngine",
    "UpdateBatch",
    "AppliedUpdate",
    "ReproError",
    "QuerySession",
    "connect",
    "QueryService",
    "ClusterService",
    "save_snapshot",
    "load_snapshot",
    "warm_from_snapshot",
    "as_metapath",
    "Estimator",
    "RankingResult",
    "TopKResult",
    "ClusteringResult",
    "ClassificationResult",
    "StreamIngestor",
    "OpenWorldWorkload",
    "networks",
    "engine",
    "ingest",
    "query",
    "serving",
    "relational",
    "measures",
    "ranking",
    "similarity",
    "clustering",
    "core",
    "integration",
    "classification",
    "olap",
    "datasets",
    "__version__",
]
